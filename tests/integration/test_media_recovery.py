"""Media recovery: archive dumps + log roll-forward after disk loss.

The paper excludes disk failures from its scope but lists media recovery
as needed work; the extension follows its own recipe (Section 2.1.3):
dump non-volatile storage into an off-line archive, and after a media
failure restore the dump and roll the log forward from the dump position.
"""

import pytest

from repro import TabsCluster, TabsConfig, TabsError
from repro.errors import RecoveryError
from repro.servers.int_array import IntegerArrayServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def write(cluster, cell, value):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        yield from app.call(ref, "set_cell",
                            {"cell": cell, "value": value}, tid)

    cluster.run_transaction("n1", body)


def read(cluster, cell):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return result["value"]

    return cluster.run_transaction("n1", body)


def dump(cluster):
    return cluster.run_on("n1",
                          cluster.node("n1").archive_dump_generator())


def fail_and_recover(cluster):
    tabs = cluster.node("n1")
    tabs.crash()
    lost = tabs.media_failure(["n1:array"])
    report = cluster.run_on("n1",
                            tabs.media_recover_generator(["n1:array"]))
    return lost, report


def test_archive_dump_then_disk_loss_restores_everything(cluster):
    for cell in range(1, 6):
        write(cluster, cell, cell * 10)
    dump(cluster)
    lost, _report = fail_and_recover(cluster)
    assert lost > 0  # the disk really lost pages
    assert [read(cluster, cell) for cell in range(1, 6)] == \
        [10, 20, 30, 40, 50]


def test_post_dump_commits_roll_forward_from_the_log(cluster):
    write(cluster, 1, 100)
    dump(cluster)
    write(cluster, 1, 200)   # newer than the archive
    write(cluster, 2, 300)
    fail_and_recover(cluster)
    assert read(cluster, 1) == 200
    assert read(cluster, 2) == 300


def test_media_recovery_without_a_dump_is_refused(cluster):
    write(cluster, 1, 1)
    tabs = cluster.node("n1")
    tabs.crash()
    tabs.media_failure(["n1:array"])
    with pytest.raises(RecoveryError, match="no archive dump"):
        cluster.run_on("n1", tabs.media_recover_generator(["n1:array"]))


def test_disk_failure_requires_the_node_down(cluster):
    with pytest.raises(TabsError, match="crash the node"):
        cluster.node("n1").media_failure(["n1:array"])


def test_reclamation_respects_the_archive(cluster):
    """Records newer than the dump are never truncated: media recovery
    must be able to roll the archive forward through them."""
    tabs = cluster.node("n1")
    write(cluster, 1, 1)
    archive_lsn = dump(cluster)
    for index in range(10):
        write(cluster, 2, index)
    cluster.run_on("n1", tabs.rm.take_checkpoint({}, flush=True))
    tabs.rm.wal.store.truncate_before(tabs.rm.truncation_bound())
    # Everything since the dump is still there.
    assert tabs.rm.wal.store.truncated_before <= archive_lsn + 1


def test_archive_position_survives_ordinary_crashes(cluster):
    write(cluster, 1, 7)
    dump(cluster)
    cluster.crash_node("n1")
    cluster.restart_node("n1")  # ordinary crash recovery
    write(cluster, 2, 8)
    # Now the disk dies; the pre-crash dump still works, rolled forward.
    fail_and_recover(cluster)
    assert read(cluster, 1) == 7
    assert read(cluster, 2) == 8


def test_repeated_dumps_advance_the_archive(cluster):
    write(cluster, 1, 1)
    first = dump(cluster)
    write(cluster, 1, 2)
    second = dump(cluster)
    assert second > first
    fail_and_recover(cluster)
    assert read(cluster, 1) == 2
