"""End-to-end single-node transactions on the integer array server."""

import pytest

from repro import TabsCluster, TabsConfig, TransactionAborted
from repro.servers.int_array import IntegerArrayServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def set_cell(app, ref, tid, cell, value):
    result = yield from app.call(ref, "set_cell",
                                 {"cell": cell, "value": value}, tid)
    return result


def get_cell(app, ref, tid, cell):
    result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
    return result["value"]


def test_read_of_unset_cell_is_zero(cluster):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        value = yield from get_cell(app, ref, tid, 7)
        return value

    assert cluster.run_transaction("n1", body) == 0


def test_write_then_read_within_one_transaction(cluster):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 1, 42)
        value = yield from get_cell(app, ref, tid, 1)
        return value

    assert cluster.run_transaction("n1", body) == 42


def test_committed_write_visible_to_later_transaction(cluster):
    app = cluster.application("n1")

    def writer(tid):
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 3, 99)

    def reader(tid):
        ref = yield from app.lookup_one("array")
        value = yield from get_cell(app, ref, tid, 3)
        return value

    cluster.run_transaction("n1", writer)
    assert cluster.run_transaction("n1", reader) == 99


def test_aborted_write_leaves_no_trace(cluster):
    app = cluster.application("n1")

    def aborting():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 5, 123)
        yield from app.abort_transaction(tid, reason="test abort")

    cluster.run_on("n1", aborting())

    def reader(tid):
        ref = yield from app.lookup_one("array")
        value = yield from get_cell(app, ref, tid, 5)
        return value

    assert cluster.run_transaction("n1", reader) == 0


def test_operation_after_abort_raises(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 1, 1)
        yield from app.abort_transaction(tid)
        yield from set_cell(app, ref, tid, 1, 2)

    with pytest.raises(TransactionAborted):
        cluster.run_on("n1", body())


def test_multiple_writes_and_reads(cluster):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        for cell in range(1, 6):
            yield from set_cell(app, ref, tid, cell, cell * 10)
        total = 0
        for cell in range(1, 6):
            total += yield from get_cell(app, ref, tid, cell)
        return total

    assert cluster.run_transaction("n1", body) == 150


def test_out_of_range_cell_rejected(cluster):
    app = cluster.application("n1")

    def body(tid):
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 10**9, 1)

    with pytest.raises(Exception, match="outside"):
        cluster.run_transaction("n1", body)


def test_end_transaction_returns_true_on_commit(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("array")
        yield from set_cell(app, ref, tid, 2, 7)
        committed = yield from app.end_transaction(tid)
        return committed

    assert cluster.run_on("n1", body()) is True


def test_read_only_transaction_commits(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("array")
        yield from get_cell(app, ref, tid, 1)
        committed = yield from app.end_transaction(tid)
        return committed

    assert cluster.run_on("n1", body()) is True


def test_write_conflict_serializes(cluster):
    """Two transactions writing the same cell: the second waits for the
    first's commit, and both effects apply in order."""
    app = cluster.application("n1")
    log = []

    def writer(name, value, delay_end):
        def body():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": 9, "value": value}, tid)
            log.append((name, "wrote"))
            if delay_end:
                from repro.sim import Timeout
                yield Timeout(cluster.engine, delay_end)
            yield from app.end_transaction(tid)
            log.append((name, "committed"))
        return body()

    first = cluster.spawn_on("n1", writer("first", 1, 2000.0))
    second = cluster.spawn_on("n1", writer("second", 2, 0.0))
    cluster.engine.run_until(first)
    cluster.engine.run_until(second)
    assert log.index(("first", "committed")) < log.index(("second", "wrote"))

    def reader(tid):
        ref = yield from app.lookup_one("array")
        result = yield from app.call(ref, "get_cell", {"cell": 9}, tid)
        return result["value"]

    assert cluster.run_transaction("n1", reader) == 2
