"""Distributed corner cases: remote subtransactions, coordinator crash
with phase-two redrive, and vote time-outs."""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.sim import Timeout
from repro.wal.records import TransactionStatusRecord, TxnStatus


def make_cluster(nodes=2):
    cluster = TabsCluster(TabsConfig())
    for index in range(nodes):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"arr{index}"))
    cluster.start()
    return cluster


def set_cell(app, ref, tid, cell, value):
    yield from app.call(ref, "set_cell", {"cell": cell, "value": value},
                        tid)


def read_cell(cluster, node, array, cell):
    app = cluster.application(node)

    def body(tid):
        ref = yield from app.lookup_one(array)
        result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return result["value"]

    return cluster.run_transaction(node, body)


class TestRemoteSubtransactions:
    def test_subtransaction_operating_remotely_commits_with_family(self):
        """A subtransaction's operations on a *remote* node must merge
        into the family at the subordinate before it prepares."""
        cluster = make_cluster(2)
        app = cluster.application("n0")

        def body():
            parent = yield from app.begin_transaction()
            child = yield from app.begin_transaction(parent=parent)
            remote = yield from app.lookup_one("arr1")
            yield from set_cell(app, remote, child, 1, 11)
            yield from app.end_transaction(child)
            local = yield from app.lookup_one("arr0")
            yield from set_cell(app, local, parent, 1, 22)
            committed = yield from app.end_transaction(parent)
            return committed

        assert cluster.run_on("n0", body()) is True
        cluster.settle()
        assert read_cell(cluster, "n0", "arr1", 1) == 11
        assert read_cell(cluster, "n0", "arr0", 1) == 22

    def test_remote_subtransaction_survives_subordinate_crash(self):
        cluster = make_cluster(2)
        app = cluster.application("n0")

        def body():
            parent = yield from app.begin_transaction()
            child = yield from app.begin_transaction(parent=parent)
            remote = yield from app.lookup_one("arr1")
            yield from set_cell(app, remote, child, 2, 5)
            yield from app.end_transaction(child)
            committed = yield from app.end_transaction(parent)
            return committed

        assert cluster.run_on("n0", body()) is True
        cluster.settle()
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        assert read_cell(cluster, "n0", "arr1", 2) == 5

    def test_aborted_remote_subtransaction_leaves_remote_clean(self):
        cluster = make_cluster(2)
        app = cluster.application("n0")

        def body():
            parent = yield from app.begin_transaction()
            child = yield from app.begin_transaction(parent=parent)
            remote = yield from app.lookup_one("arr1")
            yield from set_cell(app, remote, child, 3, 99)
            yield from app.abort_transaction(child)
            committed = yield from app.end_transaction(parent)
            return committed

        assert cluster.run_on("n0", body()) is True
        cluster.settle()
        assert read_cell(cluster, "n0", "arr1", 3) == 0


class TestCoordinatorCrash:
    def test_commit_record_without_end_record_redrives_phase_two(self):
        """The coordinator crashes after forcing COMMITTED but before the
        subordinate processes the commit request: on restart the
        coordinator re-ships phase two and the subordinate commits."""
        cluster = make_cluster(2)
        app = cluster.application("n0")
        coord = cluster.node("n0")
        sub_tm = cluster.node("n1").tm
        # The redrive must do the work: push self-inquiry far past the
        # test's horizon (but keep it bounded so settling past it does not
        # execute millions of background failure-detector probes).
        sub_tm.prepared_inquiry_ms = 600_000.0

        # Gate the subordinate's commit handler so the in-doubt window is
        # deterministic.
        from repro.sim import Event

        gate = Event(cluster.engine, "commit-gate")
        original = sub_tm._handle_commit_req

        def gated(message):
            yield gate
            yield from original(message)

        sub_tm._handle_commit_req = gated

        def transfer(tid):
            local = yield from app.lookup_one("arr0")
            remote = yield from app.lookup_one("arr1")
            yield from set_cell(app, local, tid, 1, 1)
            yield from set_cell(app, remote, tid, 1, 2)

        txn = cluster.spawn_on("n0", app.run_transaction(transfer))
        txn.defused = True

        def crash_when_committed():
            while True:
                yield Timeout(cluster.engine, 0.5)
                durable = coord.rm.wal.read_forward(
                    coord.rm.wal.store.truncated_before)
                if any(isinstance(r, TransactionStatusRecord)
                       and r.status is TxnStatus.COMMITTED
                       for r in durable):
                    coord.crash()
                    return

        watcher = cluster.spawn_on("n1", crash_when_committed())
        cluster.engine.run(until=cluster.engine.now + 5_000.0)
        assert not watcher.alive

        gate.succeed()  # the gated commit_req now hits a dead sender; fine
        cluster.restart_node("n0")
        # Recovery found a COMMITTED record with children and no end
        # record: phase two is re-driven.
        report = cluster.node("n0").last_recovery
        assert len(report.phase_two_redriven) == 1
        cluster.settle(extra_ms=30_000.0)
        assert read_cell(cluster, "n0", "arr1", 1) == 2
        # The coordinator's own half also committed (value pass redo).
        assert read_cell(cluster, "n0", "arr0", 1) == 1


class TestVoteTimeout:
    def test_unreachable_subordinate_aborts_the_transaction(self):
        cluster = make_cluster(2)
        cluster.node("n0").tm.vote_timeout_ms = 2_000.0
        app = cluster.application("n0")

        def body():
            tid = yield from app.begin_transaction()
            local = yield from app.lookup_one("arr0")
            remote = yield from app.lookup_one("arr1")
            yield from set_cell(app, local, tid, 1, 1)
            yield from set_cell(app, remote, tid, 1, 1)
            # The subordinate dies before the prepare datagram arrives.
            cluster.crash_node("n1")
            committed = yield from app.end_transaction(tid)
            return committed

        assert cluster.run_on("n0", body()) is False
        cluster.settle()
        assert read_cell(cluster, "n0", "arr0", 1) == 0
