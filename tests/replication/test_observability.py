"""Replication observability: redundancy gauges and the barrier window.

Two signals ride on the metrics registry when replication is enabled:

- ``replication.available_copies[keyspace]`` -- a per-shard gauge of how
  many copies *this node* currently believes reachable.  It moves with
  the availability view (suspect / restart-observed / recovered), so a
  dashboard shows redundancy eroding before anything fails outright.
- ``replica.catchup_wait_ms`` -- a histogram of how long each recovering
  shard's read barrier stayed up: the per-shard degraded-service window.
"""

from tests.replication.conftest import build_replicated

from repro.workloads.debitcredit import TxnSpec, replicated_debitcredit_txn


def copies_gauge(cluster, node, keyspace):
    return cluster.metrics.gauge(
        node, f"replication.available_copies[{keyspace}]").value


class TestAvailableCopiesGauge:
    def test_primed_at_full_redundancy(self):
        """Installing the placement primes every locally hosted shard's
        gauge at rf (both copies reachable on a fresh cluster)."""
        cluster, _ = build_replicated(seed=41)
        keyspaces = cluster.placement.keyspaces_on("bank0")
        assert keyspaces
        for keyspace in keyspaces:
            assert copies_gauge(cluster, "bank0", keyspace) == 2

    def test_suspicion_drops_the_gauge(self):
        cluster, _ = build_replicated(seed=43)
        view = cluster.node("bank0").replication.view
        view.observe(0.0, "bank0", "suspect", "bank1")
        cluster.node("bank0").replication.refresh_copy_gauges()
        for keyspace in cluster.placement.keyspaces_on("bank0"):
            assert copies_gauge(cluster, "bank0", keyspace) == 1

    def test_recovery_restores_the_gauge(self):
        cluster, _ = build_replicated(seed=47)
        runtime = cluster.node("bank0").replication
        runtime.view.observe(0.0, "bank0", "suspect", "bank1")
        runtime.refresh_copy_gauges()
        runtime.view.observe(10.0, "bank0", "recovered", "bank1")
        runtime.refresh_copy_gauges()
        for keyspace in cluster.placement.keyspaces_on("bank0"):
            assert copies_gauge(cluster, "bank0", keyspace) == 2

    def test_detector_events_move_the_gauge_without_manual_refresh(self):
        """The fd_observers hook wires detector events to the gauges, in
        order (view first, then refresh) so the refresh reads the
        *updated* view."""
        cluster, _ = build_replicated(seed=53)
        node = cluster.node("bank0")
        keyspace = cluster.placement.keyspaces_on("bank0")[0]
        for observer in node.fd_observers:
            observer(0.0, "bank0", "suspect", "bank1")
        assert copies_gauge(cluster, "bank0", keyspace) == 1
        for observer in node.fd_observers:
            observer(5.0, "bank0", "recovered", "bank1")
        assert copies_gauge(cluster, "bank0", keyspace) == 2


class TestCatchupWaitHistogram:
    def test_recovery_observes_one_wait_per_replicated_shard(self):
        """Crash, degraded commit, restart: every replicated shard on the
        recovering node logs exactly one barrier window, in simulated
        ms, with ordered percentiles for the latency report."""
        cluster, topology = build_replicated(seed=59)
        rapp = cluster.replicated_application("bank0")

        def run_txn(spec):
            def body(tid):
                yield from replicated_debitcredit_txn(rapp, topology,
                                                      spec, tid)
            cluster.run_on("bank0", rapp.run_transaction(body))

        run_txn(TxnSpec(home_branch=0, teller=1, account_branch=0,
                        account=1, amount=25))
        cluster.crash_node("bank1")
        cluster.node("bank0").replication.view.observe(
            0.0, "bank0", "suspect", "bank1")
        run_txn(TxnSpec(home_branch=0, teller=2, account_branch=0,
                        account=2, amount=40))
        cluster.restart_node("bank1")
        cluster.settle(extra_ms=5_000.0)

        hist = cluster.metrics.histogram("bank1", "replica.catchup_wait_ms")
        replicated = [ks for ks in cluster.placement.keyspaces_on("bank1")
                      if len(cluster.placement.replicas(ks)) > 1]
        assert hist.count == len(replicated) > 0
        assert hist.min >= 0.0
        assert hist.p50 <= hist.p95 <= hist.p99 <= hist.max

    def test_fault_free_run_observes_nothing(self):
        """No recovery, no barrier: the histogram stays absent so the
        metrics snapshot of an unreplicated-path run is unchanged."""
        cluster, topology = build_replicated(seed=61)
        rapp = cluster.replicated_application("bank0")
        spec = TxnSpec(home_branch=0, teller=1, account_branch=0,
                       account=3, amount=10)

        def body(tid):
            yield from replicated_debitcredit_txn(rapp, topology, spec, tid)

        cluster.run_on("bank0", rapp.run_transaction(body))
        snapshot = cluster.metrics.snapshot()
        assert not any("catchup_wait" in name
                       for name in snapshot["histograms"])
