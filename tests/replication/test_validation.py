"""Commit-time footprint validation, unit and end-to-end.

The available-copies rule (RepCRec): a site failure erases its
in-memory concurrency-control state, so any transaction that *touched*
a since-failed replica -- wrote to it, or merely read from it -- must
abort at commit, even if the replica looks healthy again by then.  The
end-to-end tests drive the detector events straight into the
availability view mid-transaction and assert the Transaction Manager
refuses the commit.
"""

from tests.replication.conftest import build_replicated

from repro.replication import AvailabilityView, PlacementMap, validate_footprint
from repro.workloads.debitcredit import _replicated_rmw


def make_view(down=(), counts=None):
    view = AvailabilityView("n0")
    view._down = set(down)
    view._fail_counts = dict(counts or {})
    return view


PLACEMENT = PlacementMap({"a": ("n0", "n1"), "b": ("n1", "n2")})


class TestValidateFootprint:
    def test_empty_footprint_commits(self):
        assert validate_footprint(make_view(), PLACEMENT,
                                  {"written": {}, "keyspaces": {}}) is None

    def test_written_replica_down_aborts(self):
        view = make_view(down={"n1"}, counts={"n1": 1})
        reason = validate_footprint(view, PLACEMENT, {
            "written": {"n1": 0}, "keyspaces": {"b": ["n1", "n2"]}})
        assert reason is not None and "n1" in reason

    def test_written_replica_restarted_aborts(self):
        """Available again, but the fail count moved: its locks and
        buffered writes are gone."""
        view = make_view(counts={"n1": 2})
        reason = validate_footprint(view, PLACEMENT, {
            "written": {"n1": 1}, "keyspaces": {"b": ["n1", "n2"]}})
        assert reason is not None and "restarted" in reason

    def test_stable_replicas_commit(self):
        view = make_view(counts={"n1": 3})
        assert validate_footprint(view, PLACEMENT, {
            "written": {"n1": 3, "n2": 0},
            "keyspaces": {"b": ["n1", "n2"]}}) is None

    def test_recovered_copy_missing_a_write_aborts(self):
        """Rule 2, the post-recovery write barrier: a replica that is up
        *now* but absent from the write set recovered mid-transaction;
        committing would strand it stale."""
        view = make_view()
        reason = validate_footprint(view, PLACEMENT, {
            "written": {"n1": 0}, "keyspaces": {"b": ["n1"]}})
        assert reason is not None and "n2" in reason

    def test_still_down_copy_missing_a_write_commits(self):
        view = make_view(down={"n2"}, counts={"n2": 1})
        assert validate_footprint(view, PLACEMENT, {
            "written": {"n1": 0}, "keyspaces": {"b": ["n1"]}}) is None

    def test_read_replica_down_aborts(self):
        """Rule 1 covers plain reads: the failed site's read lock is
        erased, so a writer committing at the surviving copies would
        give this reader read skew."""
        view = make_view(down={"n1"}, counts={"n1": 1})
        reason = validate_footprint(view, PLACEMENT, {
            "written": {}, "read": {"n1": 0}, "keyspaces": {}})
        assert reason is not None and "read" in reason

    def test_read_replica_restarted_aborts(self):
        view = make_view(counts={"n1": 2})
        reason = validate_footprint(view, PLACEMENT, {
            "written": {}, "read": {"n1": 1}, "keyspaces": {}})
        assert reason is not None and "restarted" in reason

    def test_stable_read_commits(self):
        view = make_view(counts={"n1": 3})
        assert validate_footprint(view, PLACEMENT, {
            "written": {}, "read": {"n1": 3, "n2": 0},
            "keyspaces": {}}) is None

    def test_reads_do_not_trigger_the_write_barrier(self):
        """Rule 2 is about stranding stale *copies*; a read-only
        key-space has no missed write, so an up copy that served
        nothing is irrelevant."""
        view = make_view()
        assert validate_footprint(view, PLACEMENT, {
            "written": {}, "read": {"n1": 0}, "keyspaces": {}}) is None


def flap_transaction(cluster, topology, events):
    """One replicated account update with detector ``events`` injected
    between the write fan-out and the commit attempt."""
    rapp = cluster.replicated_application("bank0")
    view = cluster.node("bank0").replication.view

    def txn():
        tid = yield from rapp.begin_transaction()
        yield from _replicated_rmw(rapp, topology.account_server(0), 1, 7,
                                   tid)
        for event in events:
            view.observe(0.0, "bank0", event, "bank1")
        committed = yield from rapp.end_transaction(tid)
        return committed

    return cluster.run_on("bank0", txn())


def read_flap_transaction(cluster, topology, events):
    """A read-only transaction whose single read is served by bank1
    (branch 1's key-spaces anchor there), with detector ``events``
    injected between the read and the commit attempt."""
    rapp = cluster.replicated_application("bank0")
    view = cluster.node("bank0").replication.view
    keyspace = topology.account_server(1)
    assert cluster.placement.replicas(keyspace)[0] == "bank1"

    def txn():
        tid = yield from rapp.begin_transaction()
        yield from rapp.read(keyspace, "get_balance", {"row": 1}, tid)
        for event in events:
            view.observe(0.0, "bank0", event, "bank1")
        committed = yield from rapp.end_transaction(tid)
        return committed

    return cluster.run_on("bank0", txn())


def validation_aborts(cluster) -> int:
    return cluster.metrics.counter(
        "bank0", "replication.validation_abort").value


class TestCommitTimeValidation:
    def test_suspicion_flap_aborts_open_transaction(self):
        """failed -> recovered: the replica answers probes again by
        commit time, but the transaction wrote through the flap -- the
        TM must still abort it."""
        cluster, topology = build_replicated(seed=41)
        committed = flap_transaction(cluster, topology,
                                     ["suspect", "recovered"])
        assert committed is False
        assert validation_aborts(cluster) == 1
        # The flap is history: a fresh transaction records the new fail
        # count and commits.
        rapp = cluster.replicated_application("bank0")

        def retry(tid):
            yield from _replicated_rmw(rapp, topology.account_server(0),
                                       1, 7, tid)

        cluster.run_on("bank0", rapp.run_transaction(retry))
        assert validation_aborts(cluster) == 1

    def test_full_flap_failed_recovered_failed_aborts(self):
        cluster, topology = build_replicated(seed=43)
        committed = flap_transaction(
            cluster, topology, ["suspect", "recovered", "suspect"])
        assert committed is False
        assert validation_aborts(cluster) == 1

    def test_restart_observed_mid_transaction_aborts(self):
        """The peer was never suspected; a higher-epoch pong betrays a
        crash-and-return while the transaction was open."""
        cluster, topology = build_replicated(seed=47)
        committed = flap_transaction(cluster, topology,
                                     ["restart-observed"])
        assert committed is False
        assert validation_aborts(cluster) == 1

    def test_quiet_detector_commits(self):
        cluster, topology = build_replicated(seed=53)
        assert flap_transaction(cluster, topology, []) is True
        assert validation_aborts(cluster) == 0

    def test_read_from_since_failed_replica_aborts(self):
        """The RepCRec rule for reads: the serving site failed before
        commit, its read lock is gone, so a concurrent writer could
        have committed around this reader -- read skew unless the
        reader aborts too."""
        cluster, topology = build_replicated(seed=59)
        committed = read_flap_transaction(cluster, topology, ["suspect"])
        assert committed is False
        assert validation_aborts(cluster) == 1

    def test_read_through_flap_aborts(self):
        """Healthy again by commit time, but the fail count moved while
        the transaction held its read."""
        cluster, topology = build_replicated(seed=61)
        committed = read_flap_transaction(cluster, topology,
                                          ["suspect", "recovered"])
        assert committed is False
        assert validation_aborts(cluster) == 1

    def test_quiet_detector_read_commits(self):
        cluster, topology = build_replicated(seed=67)
        assert read_flap_transaction(cluster, topology, []) is True
        assert validation_aborts(cluster) == 0
