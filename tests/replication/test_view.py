"""Unit tests for the availability view's detector-event semantics."""

from repro.replication import AvailabilityView, PlacementMap


def view_for(local="n0"):
    return AvailabilityView(local)


class TestAvailabilityView:
    def test_everyone_available_initially(self):
        view = view_for()
        assert view.available("n1")
        assert view.fail_count("n1") == 0

    def test_suspect_marks_down_and_bumps(self):
        view = view_for()
        view.observe(10.0, "n0", "suspect", "n1")
        assert not view.available("n1")
        assert view.fail_count("n1") == 1

    def test_recovered_restores_without_second_bump(self):
        """A false suspicion: the same epoch answered again.  The peer is
        available but the suspicion's bump *stays* -- open transactions
        that wrote through the flap must fail validation."""
        view = view_for()
        view.observe(10.0, "n0", "suspect", "n1")
        view.observe(20.0, "n0", "recovered", "n1")
        assert view.available("n1")
        assert view.fail_count("n1") == 1

    def test_restart_observed_bumps_even_if_never_suspected(self):
        """A pong with a higher epoch betrays a crash we never saw: the
        peer's CC state is gone, so the count bumps."""
        view = view_for()
        view.observe(10.0, "n0", "restart-observed", "n1")
        assert view.available("n1")
        assert view.fail_count("n1") == 1

    def test_full_flap_accumulates(self):
        view = view_for()
        view.observe(10.0, "n0", "suspect", "n1")
        view.observe(20.0, "n0", "recovered", "n1")
        view.observe(30.0, "n0", "suspect", "n1")
        assert not view.available("n1")
        assert view.fail_count("n1") == 2

    def test_local_node_always_available(self):
        view = view_for("n0")
        view.observe(10.0, "n0", "suspect", "n0")
        assert view.available("n0")

    def test_available_replicas_in_placement_order(self):
        placement = PlacementMap({"a": ("n2", "n1", "n0")})
        view = view_for("n0")
        assert view.available_replicas(placement, "a") == ["n2", "n1", "n0"]
        view.observe(10.0, "n0", "suspect", "n2")
        assert view.available_replicas(placement, "a") == ["n1", "n0"]
