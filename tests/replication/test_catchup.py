"""Replica catch-up: the read barrier and convergence after a restart."""

import pytest

from tests.replication.conftest import build_replicated

from repro.errors import ReplicaUnavailable
from repro.replication import audit_replica_convergence
from repro.workloads.debitcredit import TxnSpec, replicated_debitcredit_txn


def counter(cluster, node, name):
    return cluster.metrics.counter(node, name).value


class TestReadBarrier:
    def test_catching_up_replica_refuses_gated_reads(self):
        cluster, topology = build_replicated(seed=23)
        keyspace = topology.account_server(1)  # anchored on bank1
        cluster.node("bank1").servers[keyspace].catchup_pending = True
        app = cluster.application("bank0")

        def probe():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one(keyspace, node_name="bank1")
            try:
                yield from app.call(ref, "get_balance", {"row": 1}, tid)
            except ReplicaUnavailable:
                yield from app.abort_transaction(tid, reason="barrier")
                return True
            yield from app.end_transaction(tid)
            return False

        assert cluster.run_on("bank0", probe()) is True

    def test_router_fails_over_past_the_barrier(self):
        cluster, topology = build_replicated(seed=29)
        keyspace = topology.account_server(1)
        cluster.node("bank1").servers[keyspace].catchup_pending = True
        rapp = cluster.replicated_application("bank0")

        def txn():
            tid = yield from rapp.begin_transaction()
            reply = yield from rapp.read(keyspace, "get_balance",
                                         {"row": 1}, tid)
            yield from rapp.end_transaction(tid)
            return reply

        reply = cluster.run_on("bank0", txn())
        assert "balance" in reply
        assert counter(cluster, "bank0", "replication.read_failover") >= 1

    def test_catchup_ops_pass_the_barrier(self):
        """The catch-up transactions themselves must not be refused, or
        two replicas recovering from a total shard outage could never
        merge from each other."""
        cluster, topology = build_replicated(seed=31)
        keyspace = topology.account_server(1)
        rapp = cluster.replicated_application("bank0")

        def seed_write(tid):
            reply = yield from rapp.read(keyspace, "get_balance_for_update",
                                         {"row": 1}, tid, for_update=True)
            yield from rapp.write_all(keyspace, "put_balance",
                                      {"row": 1,
                                       "balance": reply["balance"] + 1},
                                      tid)

        cluster.run_on("bank0", rapp.run_transaction(seed_write))
        cluster.node("bank1").servers[keyspace].catchup_pending = True
        app = cluster.application("bank0")

        def probe():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one(keyspace, node_name="bank1")
            listing = yield from app.call(ref, "repl_cells", {}, tid)
            yield from app.end_transaction(tid)
            return listing

        listing = cluster.run_on("bank0", probe())
        assert listing["offsets"]


@pytest.fixture()
def recovered_cluster():
    """Commit; crash bank1; commit degraded; restart bank1 (running
    catch-up); return everything the assertions need."""
    cluster, topology = build_replicated(seed=37)
    rapp = cluster.replicated_application("bank0")

    def run_txn(spec):
        def body(tid):
            yield from replicated_debitcredit_txn(rapp, topology, spec, tid)
        cluster.run_on("bank0", rapp.run_transaction(body))

    run_txn(TxnSpec(home_branch=0, teller=1, account_branch=0,
                    account=1, amount=25))
    cluster.crash_node("bank1")
    cluster.node("bank0").replication.view.observe(
        0.0, "bank0", "suspect", "bank1")
    # Three degraded commits bank1 never saw: the catch-up must carry
    # their account, teller, branch, and history effects across.
    for account in (2, 3, 4):
        run_txn(TxnSpec(home_branch=0, teller=2, account_branch=0,
                        account=account, amount=40))
    cluster.restart_node("bank1")
    cluster.settle(extra_ms=5_000.0)
    cluster.node("bank0").replication.view.observe(
        0.0, "bank0", "restart-observed", "bank1")
    return cluster, topology


class TestCatchup:
    def test_barrier_drops_after_catchup(self, recovered_cluster):
        cluster, topology = recovered_cluster
        for keyspace in cluster.placement.keyspaces_on("bank1"):
            assert cluster.node("bank1").servers[keyspace] \
                .catchup_pending is False

    def test_catchup_transfers_pages_and_converges(self, recovered_cluster):
        cluster, _ = recovered_cluster
        assert counter(cluster, "bank1", "replica.catchup_pages") > 0
        assert audit_replica_convergence(cluster) == []

    def test_caught_up_replica_serves_current_values(self, recovered_cluster):
        """Read bank1's copy directly: it must show the balance from the
        commits it missed."""
        cluster, topology = recovered_cluster
        keyspace = topology.branch_server(0)
        app = cluster.application("bank1")

        def read():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one(keyspace, node_name="bank1")
            reply = yield from app.call(ref, "get_balance", {"row": 1}, tid)
            yield from app.end_transaction(tid)
            return reply["balance"]

        assert cluster.run_on("bank1", read()) == 25 + 3 * 40

    def test_full_replica_writes_resume(self, recovered_cluster):
        cluster, topology = recovered_cluster
        rapp = cluster.replicated_application("bank0")
        degraded_before = counter(cluster, "bank0",
                                  "replication.write_all_degraded")
        spec = TxnSpec(home_branch=0, teller=1, account_branch=0,
                       account=5, amount=5)

        def body(tid):
            yield from replicated_debitcredit_txn(rapp, topology, spec, tid)

        cluster.run_on("bank0", rapp.run_transaction(body))
        assert counter(cluster, "bank0", "replication.write_all_degraded") \
            == degraded_before
        assert audit_replica_convergence(cluster) == []
