"""Unit tests for the key-space placement map."""

import pytest

from repro.errors import TabsError
from repro.replication import PlacementMap


class TestPlacementMap:
    def test_replicas_are_ordered_and_queryable(self):
        placement = PlacementMap({"a": ("n0", "n1"), "b": ("n1",)})
        assert placement.replicas("a") == ("n0", "n1")
        assert placement.replicas("b") == ("n1",)
        assert "a" in placement and "c" not in placement
        assert len(placement) == 2

    def test_unknown_keyspace_raises(self):
        placement = PlacementMap({"a": ("n0",)})
        with pytest.raises(TabsError):
            placement.replicas("missing")

    def test_empty_replica_list_rejected(self):
        with pytest.raises(TabsError):
            PlacementMap({"a": ()})

    def test_duplicate_replica_rejected(self):
        with pytest.raises(TabsError):
            PlacementMap({"a": ("n0", "n0")})

    def test_keyspaces_on_and_nodes(self):
        placement = PlacementMap({"a": ("n0", "n1"), "b": ("n2", "n0")})
        assert placement.keyspaces_on("n0") == ["a", "b"]
        assert placement.keyspaces_on("n1") == ["a"]
        assert placement.nodes() == ["n0", "n1", "n2"]


class TestRingPlacement:
    def test_anchored_ring(self):
        placement = PlacementMap.ring(
            ["b0", "b1"], ["bank0", "bank1"], 2,
            anchors={"b0": 0, "b1": 1})
        assert placement.replicas("b0") == ("bank0", "bank1")
        assert placement.replicas("b1") == ("bank1", "bank0")

    def test_round_robin_without_anchors(self):
        placement = PlacementMap.ring(["a", "b", "c"],
                                      ["n0", "n1", "n2"], 1)
        assert placement.replicas("a") == ("n0",)
        assert placement.replicas("b") == ("n1",)
        assert placement.replicas("c") == ("n2",)

    def test_factor_clamped_to_node_count(self):
        placement = PlacementMap.ring(["a"], ["n0", "n1"], 5)
        assert placement.replicas("a") == ("n0", "n1")

    def test_factor_floor_is_one(self):
        placement = PlacementMap.ring(["a"], ["n0", "n1"], 0)
        assert placement.replicas("a") == ("n0",)

    def test_no_nodes_rejected(self):
        with pytest.raises(TabsError):
            PlacementMap.ring(["a"], [], 1)
