"""Replica-targeted chaos-plan helpers and seed compatibility."""

from repro.chaos import CrashAt, PartitionAt, random_plan
from repro.chaos.plan import crash_one_replica_per_shard, isolate_replica
from repro.replication import PlacementMap

PLACEMENT = PlacementMap.ring(["a", "b", "c"], ["n0", "n1", "n2"], 2,
                              anchors={"a": 0, "b": 1, "c": 2})


class TestCrashOneReplicaPerShard:
    def test_targets_are_deduped_and_sorted(self):
        actions = crash_one_replica_per_shard(PLACEMENT, at_ms=1_000.0,
                                              restart_after_ms=500.0)
        # rank -1 of a/b/c is n1/n2/n0: every node, once each, sorted.
        assert [a.node for a in actions] == ["n0", "n1", "n2"]
        assert all(isinstance(a, CrashAt) for a in actions)
        assert all(a.restart_after_ms == 500.0 for a in actions)

    def test_stagger_spaces_the_crashes(self):
        actions = crash_one_replica_per_shard(PLACEMENT, at_ms=1_000.0,
                                              stagger_ms=6_000.0)
        assert [a.at_ms for a in actions] == [1_000.0, 7_000.0, 13_000.0]

    def test_anchor_rank_targets_the_home_copies(self):
        actions = crash_one_replica_per_shard(PLACEMENT, at_ms=0.0, rank=0)
        assert [a.node for a in actions] == ["n0", "n1", "n2"]


class TestIsolateReplica:
    def test_partitions_the_replica_from_every_other_node(self):
        action = isolate_replica(PLACEMENT, "a", at_ms=2_000.0,
                                 heal_after_ms=1_000.0)
        assert isinstance(action, PartitionAt)
        assert action.groups == (("n1",), ("n0", "n2"))
        assert action.heal_after_ms == 1_000.0

    def test_rank_selects_the_copy(self):
        action = isolate_replica(PLACEMENT, "a", at_ms=0.0, rank=0)
        assert action.groups[0] == ("n0",)


class TestRandomPlanReplicationWeight:
    NODES = ["n0", "n1", "n2"]

    def test_weight_zero_reproduces_historical_seeds(self):
        """The new knob defaults off and, even passed explicitly as 0,
        draws nothing from the RNG: old (seed, args) pairs keep
        producing byte-identical plans."""
        for seed in (1, 7, 99, 2306):
            old = random_plan(seed, self.NODES, 30_000.0, episodes=6)
            new = random_plan(seed, self.NODES, 30_000.0, episodes=6,
                              replication_weight=0, placement=PLACEMENT)
            assert old == new

    def test_weight_without_placement_is_inert(self):
        old = random_plan(5, self.NODES, 30_000.0, episodes=6)
        new = random_plan(5, self.NODES, 30_000.0, episodes=6,
                          replication_weight=100)
        assert old == new

    def test_replica_episodes_target_placement_nodes(self):
        plan = random_plan(5, self.NODES, 30_000.0, episodes=12,
                           crash_weight=0, partition_weight=0,
                           link_weight=0, disk_weight=0,
                           replication_weight=1, placement=PLACEMENT)
        assert len(plan) == 12
        for action in plan:
            assert isinstance(action, (CrashAt, PartitionAt))
            if isinstance(action, CrashAt):
                assert action.node in self.NODES
                assert action.restart_after_ms is not None
            else:
                assert len(action.groups[0]) == 1
                assert action.heal_after_ms is not None

    def test_replica_plans_are_reproducible(self):
        kwargs = dict(episodes=8, replication_weight=3,
                      placement=PLACEMENT)
        assert random_plan(11, self.NODES, 20_000.0, **kwargs) \
            == random_plan(11, self.NODES, 20_000.0, **kwargs)
