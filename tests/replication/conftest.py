"""Shared builder for a small replicated DebitCredit cluster."""

from repro.core.cluster import TabsCluster
from repro.core.config import ReplicationConfig, TabsConfig, WorkloadConfig

#: two branches on two nodes, rf=2: every key-space has a copy on each
#: node, so any single crash leaves every shard readable and writable
WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=50,
                          tellers_per_branch=2, locality=1.0)


def build_replicated(seed: int = 7,
                     replication: ReplicationConfig | None = None):
    """A started rf=2 DebitCredit cluster; returns (cluster, topology)."""
    config = TabsConfig(
        seed=seed, workload=WORKLOAD,
        replication=replication or ReplicationConfig.available_copies())
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    return cluster, topology
