"""Degraded service, not outage: routing around a dead replica."""

from tests.replication.conftest import build_replicated

from repro.workloads.debitcredit import replicated_debitcredit_txn
from repro.workloads.debitcredit import TxnSpec


def counter(cluster, node, name):
    return cluster.metrics.counter(node, name).value


class TestReadFailover:
    def test_read_fails_over_past_a_crashed_replica(self):
        """Branch 1's key-spaces anchor on bank1; with bank1 dead (and
        not yet suspected) a read from bank0 times out there and fails
        over to the local copy."""
        cluster, topology = build_replicated(seed=11)
        cluster.crash_node("bank1")
        rapp = cluster.replicated_application("bank0")
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace)[0] == "bank1"

        def txn():
            tid = yield from rapp.begin_transaction()
            reply = yield from rapp.read(keyspace, "get_balance",
                                         {"row": 1}, tid)
            committed = yield from rapp.end_transaction(tid)
            return reply, committed

        reply, committed = cluster.run_on("bank0", txn())
        assert "balance" in reply
        assert committed is True
        assert counter(cluster, "bank0", "replication.read_failover") >= 1

    def test_suspected_replica_is_skipped_without_an_attempt(self):
        """Once the detector has spoken, reads go straight to a live
        copy -- no timeout paid, no failover counted."""
        cluster, topology = build_replicated(seed=13)
        cluster.crash_node("bank1")
        view = cluster.node("bank0").replication.view
        view.observe(0.0, "bank0", "suspect", "bank1")
        rapp = cluster.replicated_application("bank0")

        def txn():
            tid = yield from rapp.begin_transaction()
            reply = yield from rapp.read(topology.account_server(1),
                                         "get_balance", {"row": 1}, tid)
            yield from rapp.end_transaction(tid)
            return reply

        reply = cluster.run_on("bank0", txn())
        assert "balance" in reply
        assert counter(cluster, "bank0", "replication.read_failover") == 0


class TestDegradedWrites:
    def test_transactions_commit_with_one_replica_down(self):
        cluster, topology = build_replicated(seed=17)
        cluster.crash_node("bank1")
        view = cluster.node("bank0").replication.view
        view.observe(0.0, "bank0", "suspect", "bank1")
        rapp = cluster.replicated_application("bank0")
        spec = TxnSpec(home_branch=0, teller=1, account_branch=0,
                       account=3, amount=10)

        def body(tid):
            yield from replicated_debitcredit_txn(rapp, topology, spec, tid)

        cluster.run_on("bank0", rapp.run_transaction(body))
        assert counter(cluster, "bank0",
                       "replication.write_all_degraded") >= 1
        assert counter(cluster, "bank0",
                       "replication.validation_abort") == 0

    def test_degraded_write_skips_the_down_copy(self):
        """The surviving copy carries the new value; the dead copy keeps
        the old one until catch-up (audited in test_catchup)."""
        cluster, topology = build_replicated(seed=19)
        rapp = cluster.replicated_application("bank0")
        keyspace = topology.branch_server(0)

        def read_balance():
            tid = yield from rapp.begin_transaction()
            reply = yield from rapp.read(keyspace, "get_balance",
                                         {"row": 1}, tid)
            yield from rapp.end_transaction(tid)
            return reply["balance"]

        before = cluster.run_on("bank0", read_balance())
        cluster.crash_node("bank1")
        cluster.node("bank0").replication.view.observe(
            0.0, "bank0", "suspect", "bank1")

        def update(tid):
            reply = yield from rapp.read(keyspace, "get_balance_for_update",
                                         {"row": 1}, tid, for_update=True)
            yield from rapp.write_all(keyspace, "put_balance",
                                      {"row": 1,
                                       "balance": reply["balance"] + 100},
                                      tid)

        cluster.run_on("bank0", rapp.run_transaction(update))
        after = cluster.run_on("bank0", read_balance())
        assert after == before + 100
