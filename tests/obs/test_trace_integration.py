"""End-to-end flight-recorder guarantees.

Three contracts from the observability work:

1. **Byte determinism** -- two same-seed traced chaos runs export
   byte-identical Chrome JSON and JSONL (the trace is a pure function of
   the seed, like everything else in the simulation).
2. **Non-interference** -- tracing must not perturb the measured run: the
   Table 5-2/5-3 primitive counts of a traced benchmark equal the
   untraced ones exactly.
3. **Completeness** -- the span tree of one distributed write transaction
   contains the whole causal chain: client call, lock acquisition, log
   force, 2PC prepare, vote, commit, ack -- across both nodes.
"""

import pytest

from repro.chaos import (
    ChaosController,
    ChaosWorkload,
    CrashAt,
    FaultPlan,
    PartitionAt,
)
from repro.chaos.workload import build_cluster
from repro.core.config import TabsConfig
from repro.obs import chrome_trace_json, jsonl_events
from repro.perf.benchmarks import BENCHMARKS_BY_KEY, run_benchmark

CHAOS_PLAN = FaultPlan.of(
    CrashAt(300.0, "n1", restart_after_ms=400.0),
    PartitionAt(900.0, (("n0",), ("n1", "n2")), heal_after_ms=400.0))


def traced_chaos_run(seed: int = 2026):
    cluster = build_cluster(seed=seed)
    tracer = cluster.enable_tracing()
    controller = ChaosController(cluster, CHAOS_PLAN, seed=seed)
    workload = ChaosWorkload(cluster, controller, seed=seed)
    workload.setup()
    controller.install()
    workload.schedule_traffic(transfers=8, spacing_ms=100.0)
    workload.run(2_500.0)
    workload.finale()
    return cluster, tracer


class TestByteDeterminism:
    def test_same_seed_chaos_traces_are_byte_identical(self):
        (_, tracer_a) = traced_chaos_run(seed=2026)
        (_, tracer_b) = traced_chaos_run(seed=2026)
        assert len(tracer_a.spans) > 10, "trace suspiciously empty"
        assert chrome_trace_json(tracer_a) == chrome_trace_json(tracer_b)
        assert jsonl_events(tracer_a) == jsonl_events(tracer_b)

    def test_different_seed_diverges(self):
        (_, tracer_a) = traced_chaos_run(seed=2026)
        (_, tracer_b) = traced_chaos_run(seed=2027)
        assert chrome_trace_json(tracer_a) != chrome_trace_json(tracer_b)


def run_w1w1(traced: bool):
    captured = []

    def instrument(cluster):
        captured.append(cluster)
        if traced:
            cluster.enable_tracing()

    result = run_benchmark(BENCHMARKS_BY_KEY["w1w1"],
                           TabsConfig(seed=1985), iterations=3,
                           instrument=instrument)
    return result, captured[0]


@pytest.fixture(scope="module")
def w1w1_traced():
    return run_w1w1(traced=True)


class TestNonInterference:
    def test_primitive_counts_identical_traced_vs_untraced(self, w1w1_traced):
        """Tracing on must leave Tables 5-2/5-3 byte-for-byte unchanged."""
        traced_result, _ = w1w1_traced
        untraced_result, _ = run_w1w1(traced=False)
        assert traced_result.precommit_counts == \
            untraced_result.precommit_counts
        assert traced_result.commit_counts == untraced_result.commit_counts
        assert traced_result.elapsed_ms == untraced_result.elapsed_ms
        assert traced_result.tabs_process_ms == \
            untraced_result.tabs_process_ms

    def test_metrics_registry_identical_traced_vs_untraced(self, w1w1_traced):
        from repro.obs import metrics_json

        _, traced_cluster = w1w1_traced
        _, untraced_cluster = run_w1w1(traced=False)
        assert metrics_json(traced_cluster.metrics) == \
            metrics_json(untraced_cluster.metrics)


class TestSpanTreeCompleteness:
    def test_distributed_write_has_the_full_causal_chain(self, w1w1_traced):
        _, cluster = w1w1_traced
        tracer = cluster.ctx.tracer
        # Find a committed transaction family rooted in a txn span.
        roots = [span for span in tracer.spans
                 if span.name == "txn" and span.attrs.get("committed")]
        assert roots, "no committed txn root span recorded"
        root = roots[0]
        family = [span for span in tracer.spans
                  if span.family == root.family]
        names = {span.name for span in family}
        for required in ("txn", "rpc:set_cell", "ds:set_cell",
                         "lock.acquire", "rm.spool", "2pc.commit",
                         "2pc.prepare", "2pc.prepare_req", "2pc.vote",
                         "rm.force_status", "wal.force", "2pc.phase2",
                         "2pc.commit_req", "2pc.ack"):
            assert required in names, f"span {required!r} missing"
        # Both nodes participate in the one family tree.
        assert {span.node for span in family} == {"node0", "node1"}
        # Every family span reaches the root by walking parent links.
        by_id = {span.span_id: span for span in family}
        for span in family:
            current = span
            hops = 0
            while current.span_id != root.span_id:
                assert current.parent_id in by_id, \
                    f"{current.name} detached from the family tree"
                current = by_id[current.parent_id]
                hops += 1
                assert hops < 50
        # The cross-node hop: node1's prepare_req parents into node0's
        # prepare span; node0's vote parents into node1's prepare_req.
        prepare_req = next(s for s in family if s.name == "2pc.prepare_req")
        assert by_id[prepare_req.parent_id].node == "node0"
        vote = next(s for s in family if s.name == "2pc.vote")
        assert by_id[vote.parent_id].node == "node1"
