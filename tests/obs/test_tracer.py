"""Unit tests for the causal span tracer."""

from repro.obs.tracer import Tracer, family_of
from repro.txn.ids import TransactionID


class FakeEngine:
    """Just a clock; the tracer only ever reads ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


def make():
    engine = FakeEngine()
    return engine, Tracer(engine)


class TestSpanLifecycle:
    def test_begin_end_records_interval(self):
        engine, tracer = make()
        span_id = tracer.begin("work", "a", "DS")
        engine.now = 5.0
        tracer.end(span_id, outcome="done")
        (span,) = tracer.spans
        assert (span.start_ms, span.end_ms) == (0.0, 5.0)
        assert span.attrs["outcome"] == "done"
        assert not span.open

    def test_span_ids_are_a_plain_counter(self):
        _, tracer = make()
        first = tracer.begin("a", "n", "DS")
        second = tracer.begin("b", "n", "DS")
        assert (first, second) == (1, 2)

    def test_end_is_idempotent_and_ignores_unknown_ids(self):
        engine, tracer = make()
        span_id = tracer.begin("work", "a", "DS")
        engine.now = 3.0
        tracer.end(span_id)
        engine.now = 9.0
        tracer.end(span_id)   # second end must not move end_ms
        tracer.end(999)       # unknown id: no-op
        assert tracer.spans[0].end_ms == 3.0


class TestParentResolution:
    def test_same_family_nests_on_the_node(self):
        _, tracer = make()
        outer = tracer.begin("outer", "a", "DS", tid="T1")
        inner = tracer.begin("inner", "a", "LOCK", tid="T1")
        assert tracer.spans[1].parent_id == outer
        assert inner != outer

    def test_families_do_not_cross_nest(self):
        _, tracer = make()
        tracer.begin("outer", "a", "DS", tid="T1")
        tracer.begin("other", "a", "DS", tid="T2")
        assert tracer.spans[1].parent_id == 0

    def test_explicit_parent_wins(self):
        _, tracer = make()
        tracer.begin("outer", "a", "DS", tid="T1")
        tracer.begin("inner", "a", "DS", tid="T1", parent_id=77)
        assert tracer.spans[1].parent_id == 77

    def test_family_less_span_inherits_node_stack_top(self):
        """A WAL force with no tid joins the enclosing span's family."""
        _, tracer = make()
        outer = tracer.begin("rm.force_status", "a", "RM", tid="T1")
        tracer.begin("wal.force", "a", "WAL")
        span = tracer.spans[1]
        assert span.parent_id == outer
        assert span.family == "T1"

    def test_family_falls_back_to_registered_root(self):
        engine, tracer = make()
        root = tracer.begin_root("T1", "a")
        # No open T1 span on node b, but the family root is registered.
        tracer.begin("remote", "b", "DS", tid="T1")
        assert tracer.spans[1].parent_id == root

    def test_family_of_uses_toplevel(self):
        parent = TransactionID("a", 1)
        child = parent.child(1)
        assert family_of(child) == family_of(parent)
        assert family_of(None) == ""


class TestCurrentSpanId:
    def test_innermost_open_family_span(self):
        _, tracer = make()
        tracer.begin("outer", "a", "DS", tid="T1")
        inner = tracer.begin("inner", "a", "LOCK", tid="T1")
        assert tracer.current_span_id("T1", "a") == inner

    def test_family_root_fallback_and_zero(self):
        _, tracer = make()
        root = tracer.begin_root("T1", "a")
        assert tracer.current_span_id("T1", "b") == root
        assert tracer.current_span_id("T9", "b") == 0

    def test_family_less_returns_node_stack_top(self):
        _, tracer = make()
        top = tracer.begin("any", "a", "DS")
        assert tracer.current_span_id(None, "a") == top
        assert tracer.current_span_id(None, "b") == 0


class TestFailureAndEvents:
    def test_node_crash_truncates_open_spans(self):
        engine, tracer = make()
        mine = tracer.begin("work", "a", "DS", tid="T1")
        other = tracer.begin("work", "b", "DS", tid="T1")
        engine.now = 7.0
        tracer.node_crashed("a")
        span = tracer.spans[0]
        assert span.end_ms == 7.0
        assert span.attrs["truncated"] == "crash"
        assert tracer.spans[1].open  # other node untouched
        assert mine != other
        assert [e.name for e in tracer.events] == ["node.crash"]

    def test_network_event_subscriber_shape(self):
        _, tracer = make()
        tracer.network_event(2.0, "send", "a", "b", "tm.vote")
        (event,) = tracer.events
        assert event.name == "net.send"
        assert (event.node, event.component) == ("a", "NET")
        assert event.attrs == {"source": "a", "target": "b",
                               "op": "tm.vote"}

    def test_introspection_helpers(self):
        _, tracer = make()
        root = tracer.begin_root("T1", "a")
        child = tracer.begin("inner", "a", "DS", tid="T1")
        assert tracer.family_root("T1") == root
        assert [s.span_id for s in tracer.spans_of_family("T1")] == \
            [root, child]
        assert [s.span_id for s in tracer.span_children(root)] == [child]
