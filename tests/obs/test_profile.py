"""The wall-clock self-profiler: accounting, contention, zero feedback.

The contracts, in the order the zero-feedback invariant demands them:

1. **Non-perturbation** -- enabling the profiler must not change one
   byte of simulated state: Table 5-2/5-3 results, metrics snapshots,
   and engine counters of profiled and unprofiled runs are equal.
2. **Accounting** -- every executed event lands in exactly one handler
   category; wall time is attributed with an injectable clock so the
   arithmetic is testable deterministically.
3. **Contention telemetry** -- the heatmap ranks lock keys by
   cumulative simulated wait, and the wait-for graph snapshots queued
   requests across lock managers.
4. **Exporters** -- collapsed-stack text is flamegraph-shaped, and the
   pstats dump loads into the stdlib ``pstats.Stats``.
"""

import io
import marshal
import pstats

from repro.core.config import TabsConfig
from repro.kernel.context import SimContext
from repro.locking.manager import LockManager
from repro.locking.modes import WRITE
from repro.obs import (
    SimProfiler,
    collapsed_stacks,
    handler_category,
    metrics_json,
    pstats_table,
    render_profile,
    write_pstats,
)
from repro.perf.benchmarks import BENCHMARKS_BY_KEY, run_benchmark
from repro.perf.throughput import run_throughput
from repro.sim import Process, Timeout


def _plain_handler():
    pass


class FakeClock:
    """A deterministic perf_counter: each read advances 1 ms."""

    def __init__(self):
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.reads * 0.001


class TestHandlerCategory:
    def test_bound_method_uses_owner_type_and_label(self):
        ctx = SimContext()
        timeout = Timeout(ctx.engine, 5.0, name="datagram")
        assert handler_category(timeout._run_callbacks) == \
            "Timeout:datagram"

    def test_instance_digits_are_normalized_away(self):
        ctx = SimContext()

        def body():
            yield Timeout(ctx.engine, 1.0)

        process = Process(ctx.engine, body(), name="client7")
        assert handler_category(process._run_callbacks) == \
            "Process:client"

    def test_parenthesised_suffix_is_stripped(self):
        ctx = SimContext()
        timeout = Timeout(ctx.engine, 5.0)  # name "timeout(5.0)"
        assert handler_category(timeout._run_callbacks) == \
            "Timeout:timeout"

    def test_lambda_folds_into_enclosing_function(self):
        def outer():
            return lambda: None

        assert handler_category(outer()) == \
            "TestHandlerCategory.test_lambda_folds_into_enclosing_function"

    def test_plain_function_uses_qualname(self):
        assert handler_category(_plain_handler) == "_plain_handler"


class TestAccounting:
    def run_profiled(self):
        ctx = SimContext()
        clock = FakeClock()
        profiler = SimProfiler(ctx, clock=clock)
        ctx.profiler = profiler
        ctx.engine.profiler = profiler

        def body():
            yield Timeout(ctx.engine, 10.0, name="datagram")
            yield Timeout(ctx.engine, 10.0, name="datagram")

        ctx.engine.run_until(Process(ctx.engine, body(), name="driver"))
        return ctx, profiler

    def test_every_step_is_attributed(self):
        ctx, profiler = self.run_profiled()
        assert profiler.steps == ctx.engine.events_executed
        assert sum(stat[0] for stat in profiler.handlers.values()) == \
            profiler.steps
        assert any(category.startswith("Timeout:")
                   for category in profiler.handlers)

    def test_wall_time_accumulates_under_fake_clock(self):
        _, profiler = self.run_profiled()
        # Each step reads the clock twice (1 ms apart), so every event
        # is charged exactly 1 ms of "wall" time.
        for count, wall_s in profiler.handlers.values():
            assert abs(wall_s - count * 0.001) < 1e-9
        assert profiler.wall_seconds() > 0
        assert profiler.events_per_wall_second() > 0

    def test_meter_relates_wall_to_sim_time(self):
        ctx, profiler = self.run_profiled()
        meter = profiler.meter()
        assert meter["events_executed"] == profiler.steps
        assert meter["sim_ms"] == 20.0
        assert meter["wall_sec_per_sim_sec"] == \
            profiler.wall_seconds() / 0.020

    def test_engine_churn_counters(self):
        ctx, _ = self.run_profiled()
        engine = ctx.engine
        assert engine.events_executed == engine.events_scheduled
        assert engine.heap_high_water >= 1
        assert engine.daemon_executed == 0
        assert engine.pending_count() == 0

    def test_callback_exceptions_propagate(self):
        ctx = SimContext()
        profiler = SimProfiler(ctx, clock=FakeClock())
        ctx.engine.profiler = profiler

        def boom():
            raise RuntimeError("handler failed")

        ctx.engine.schedule(1.0, boom)
        try:
            ctx.engine.step()
        except RuntimeError:
            pass
        else:
            raise AssertionError("exception was swallowed")
        # The failing step was still accounted.
        assert profiler.steps == 1


class TestContentionTelemetry:
    def test_heatmap_ranks_by_cumulative_wait(self):
        ctx = SimContext()
        profiler = SimProfiler(ctx, clock=FakeClock())
        profiler.record_lock_wait("n1", "cold", 5.0)
        profiler.record_lock_wait("n1", "hot", 80.0)
        profiler.record_lock_wait("n1", "hot", 40.0)
        top = profiler.hottest_lock_keys(top=1)
        assert top == [{"node": "n1", "key": "hot", "waits": 2,
                        "wait_ms": 120.0}]

    def test_shared_cell_workload_heats_exactly_one_key(self):
        captured = []

        def instrument(cluster):
            captured.append(cluster)
            cluster.enable_profiling()

        run_throughput(4, "shared", duration_ms=3_000.0,
                       instrument=instrument)
        profiler = captured[0].ctx.profiler
        assert len(profiler.lock_waits) == 1
        ((node, key), (waits, wait_ms)), = profiler.lock_waits.items()
        assert node == "n1"
        assert "offset=0" in key
        assert waits > 0 and wait_ms > 0

    def test_wait_for_graph_snapshots_queued_requests(self):
        ctx = SimContext()
        profiler = SimProfiler(ctx, clock=FakeClock())
        ctx.profiler = profiler
        manager = LockManager(ctx, node_name="n1")
        assert manager in ctx.lock_managers
        assert manager.try_lock("t1", "cell", WRITE)
        snapshots = []

        def contender():
            locker = manager.lock("t2", "cell", WRITE,
                                  timeout_ms=50.0)
            try:
                yield from locker
            except Exception:
                pass

        def observer():
            yield Timeout(ctx.engine, 10.0)
            snapshots.append(profiler.wait_for_graph())

        process = Process(ctx.engine, contender(), name="contender")
        Process(ctx.engine, observer(), name="observer")
        ctx.engine.run_until(process)
        assert snapshots == [[{
            "node": "n1", "key": "cell", "waiter": "t2",
            "mode": "WRITE", "holders": ["t1"],
        }]]
        # The timed-out wait also fed the heatmap (simulated ms).
        assert profiler.lock_waits[("n1", "cell")][0] == 1


class TestNonPerturbation:
    def run_w1w1(self, profiled: bool):
        captured = []

        def instrument(cluster):
            captured.append(cluster)
            if profiled:
                cluster.enable_profiling()

        result = run_benchmark(BENCHMARKS_BY_KEY["w1w1"],
                               TabsConfig(seed=1985), iterations=3,
                               instrument=instrument)
        return result, captured[0]

    def test_profiled_tables_equal_unprofiled(self):
        plain, plain_cluster = self.run_w1w1(profiled=False)
        profiled, profiled_cluster = self.run_w1w1(profiled=True)
        assert profiled.precommit_counts == plain.precommit_counts
        assert profiled.commit_counts == plain.commit_counts
        assert profiled.elapsed_ms == plain.elapsed_ms
        assert metrics_json(profiled_cluster.metrics) == \
            metrics_json(plain_cluster.metrics)
        assert profiled_cluster.engine.now == plain_cluster.engine.now

    def test_engine_counters_identical_either_way(self):
        _, plain_cluster = self.run_w1w1(profiled=False)
        _, profiled_cluster = self.run_w1w1(profiled=True)
        for name in ("events_scheduled", "daemon_scheduled",
                     "events_executed", "daemon_executed",
                     "heap_high_water"):
            assert getattr(profiled_cluster.engine, name) == \
                getattr(plain_cluster.engine, name), name

    def test_enable_profiling_is_idempotent(self):
        _, cluster = self.run_w1w1(profiled=True)
        profiler = cluster.ctx.profiler
        assert cluster.enable_profiling() is profiler
        assert cluster.engine.profiler is profiler


class TestExporters:
    def profiled_run(self):
        captured = []

        def instrument(cluster):
            captured.append(cluster)
            cluster.enable_profiling()

        run_throughput(2, "disjoint", duration_ms=1_000.0,
                       instrument=instrument)
        return captured[0].ctx.profiler

    def test_collapsed_stacks_shape(self):
        profiler = self.profiled_run()
        lines = collapsed_stacks(profiler).splitlines()
        assert lines
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames.startswith("sim;")
            assert int(value) >= 1
        # One line per handler category, sorted.
        assert len(lines) == len(profiler.handlers)
        assert lines == sorted(lines)

    def test_pstats_dump_loads_into_stdlib(self, tmp_path):
        profiler = self.profiled_run()
        path = tmp_path / "profile.pstats"
        write_pstats(profiler, path)
        stats = pstats.Stats(str(path), stream=io.StringIO())
        assert len(stats.stats) == len(profiler.handlers)
        assert stats.total_calls == profiler.steps
        stats.sort_stats("cumulative").print_stats(5)  # must not raise

    def test_pstats_table_matches_marshal_roundtrip(self, tmp_path):
        profiler = self.profiled_run()
        path = tmp_path / "profile.pstats"
        write_pstats(profiler, path)
        assert marshal.loads(path.read_bytes()) == pstats_table(profiler)

    def test_render_profile_sections(self):
        profiler = self.profiled_run()
        report = render_profile(profiler, top=5)
        assert "Simulator speed meter" in report
        assert "Fabric churn" in report
        assert "Hot handlers" in report
        assert "events_scheduled" in report
        assert "datagrams_sent" in report

    def test_snapshot_is_json_ready(self):
        import json

        profiler = self.profiled_run()
        snapshot = profiler.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["engine"]["events_executed"] > 0
        assert snapshot["meter"]["events_per_wall_sec"] > 0
        assert set(snapshot["handlers"]) == set(profiler.handlers)
