"""CLI tests for ``python -m repro trace`` / ``metrics`` / report routing."""

import io
import json

from repro.__main__ import main, write_report


class TestWriteReport:
    def test_resolves_stdout_at_call_time(self, capsys):
        write_report("hello")
        assert capsys.readouterr().out == "hello\n"

    def test_no_double_newline(self, capsys):
        write_report("line\n")
        assert capsys.readouterr().out == "line\n"

    def test_explicit_stream(self):
        stream = io.StringIO()
        write_report("to a file", stream=stream)
        assert stream.getvalue() == "to a file\n"


class TestExistingCommands:
    def test_inventory_routes_through_write_report(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3-1" in out
        assert "transaction_manager" in out

    def test_paths_routes_through_write_report(self, capsys):
        assert main(["paths"]) == 0
        assert "Longest-path commit counts" in capsys.readouterr().out


class TestTraceCommand:
    def test_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "r1", "--iterations", "1",
                     "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X"} <= phases
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_rerun_is_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["trace", "r1", "--iterations", "1",
                         "--out", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_jsonl_output(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        assert main(["trace", "r1", "--iterations", "1",
                     "--jsonl", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["type"] in ("span", "event")
                   for line in lines)

    def test_stdout_when_no_out_file(self, capsys):
        assert main(["trace", "r1", "--iterations", "1"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["otherData"]["clock"] == "simulated"


class TestMetricsCommand:
    def test_renders_tables(self, capsys):
        assert main(["metrics", "w1", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out
        assert "wal.forces" in out
        assert "Latency histograms (ms)" in out

    def test_json_snapshot(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["metrics", "w1", "--iterations", "1",
                     "--json", str(out)]) == 0
        snapshot = json.loads(out.read_text())
        assert any(key.endswith("/wal.forces")
                   for key in snapshot["counters"])

    def test_histogram_table_renders_percentiles(self, capsys):
        assert main(["metrics", "w1", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        header_line = next(line for line in out.splitlines()
                           if "histogram" in line and "p95" in line)
        assert "p50" in header_line and "p99" in header_line


class TestProfileCommand:
    def test_renders_hot_handler_table(self, capsys):
        assert main(["profile", "w1w1", "--iterations", "1",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Simulator speed meter" in out
        assert "Hot handlers (top 5" in out
        assert "events / wall sec" in out
        assert "events_scheduled" in out

    def test_writes_flamegraph_text(self, tmp_path, capsys):
        flame = tmp_path / "flame.txt"
        assert main(["profile", "r1", "--iterations", "1",
                     "--flame", str(flame)]) == 0
        lines = flame.read_text().splitlines()
        assert lines
        assert all(line.startswith("sim;") or line.startswith("sim ")
                   for line in lines)
        assert "flamegraph" in capsys.readouterr().out

    def test_writes_loadable_pstats(self, tmp_path, capsys):
        import pstats

        dump = tmp_path / "profile.pstats"
        assert main(["profile", "r1", "--iterations", "1",
                     "--pstats", str(dump)]) == 0
        stats = pstats.Stats(str(dump), stream=io.StringIO())
        assert stats.total_calls > 0

    def test_chaos_target_profiles(self, capsys):
        assert main(["profile", "chaos", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Hot handlers" in out
        assert "datagrams_sent" in out
