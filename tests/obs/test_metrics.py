"""Unit tests for the per-node metrics registry."""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_gauge_tracks_high_water(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec(2)
        gauge.inc(1)
        assert gauge.value == 2
        assert gauge.high_water == 3
        assert gauge.snapshot() == {"value": 2, "max": 3}

    def test_histogram_log2_buckets(self):
        hist = Histogram()
        for value, bucket in ((0.0, 0), (0.9, 0), (1.0, 1), (1.9, 1),
                              (2.0, 2), (3.9, 2), (4.0, 3), (79.0, 7)):
            before = hist.buckets.get(bucket, 0)
            hist.observe(value)
            assert hist.buckets[bucket] == before + 1
        assert hist.count == 8
        assert hist.min == 0.0
        assert hist.max == 79.0

    def test_histogram_mean_and_snapshot(self):
        hist = Histogram()
        assert hist.mean == 0.0  # no observations: no division by zero
        hist.observe(2.0)
        hist.observe(4.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["mean_ms"] == 3.0
        assert snap["buckets"] == {"2": 1, "3": 1}


class TestPercentiles:
    def test_empty_histogram_is_zero(self):
        hist = Histogram()
        assert hist.p50 == 0.0
        assert hist.p95 == 0.0
        assert hist.p99 == 0.0

    def test_single_observation_is_every_percentile(self):
        hist = Histogram()
        hist.observe(7.0)
        assert hist.p50 == 7.0
        assert hist.p95 == 7.0
        assert hist.p99 == 7.0

    def test_percentiles_are_ordered_and_clamped(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 5.0, 9.0, 17.0, 33.0, 80.0):
            hist.observe(value)
        assert hist.min <= hist.p50 <= hist.p95 <= hist.p99 <= hist.max

    def test_heavy_tail_separates_p50_from_p99(self):
        hist = Histogram()
        for _ in range(98):
            hist.observe(1.5)
        hist.observe(100.0)
        hist.observe(110.0)
        assert hist.p50 < 2.0
        assert hist.p99 > 50.0

    def test_interpolates_within_landing_bucket(self):
        hist = Histogram()
        for _ in range(100):
            hist.observe(10.0)  # bucket 4: [8, 16)
        # All mass in one bucket: interpolation stays inside [8, 16)
        # and clamping pins it to the exact observed range.
        assert hist.p50 == 10.0
        assert hist.p95 == 10.0

    def test_snapshot_shape_is_unchanged_by_percentiles(self):
        """Accessors only: golden metric digests hash snapshot(), so
        percentile support must not add snapshot keys."""
        hist = Histogram()
        hist.observe(3.0)
        assert set(hist.snapshot()) == {"count", "mean_ms", "min_ms",
                                        "max_ms", "buckets"}


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a", "x") is registry.counter("a", "x")
        assert registry.counter("a", "x") is not registry.counter("b", "x")
        assert registry.gauge("a", "g") is registry.gauge("a", "g")
        assert registry.histogram("a", "h") is registry.histogram("a", "h")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b", "z").inc()
        registry.counter("a", "y").inc(2)
        registry.gauge("a", "depth").set(4)
        registry.histogram("a", "lat").observe(1.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a/y", "b/z"]
        assert snap["counters"]["a/y"] == 2
        assert snap["gauges"]["a/depth"] == {"value": 4, "max": 4}
        assert snap["histograms"]["a/lat"]["count"] == 1
