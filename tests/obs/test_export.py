"""Unit tests for the Chrome-trace and JSONL exporters."""

import json

from repro.obs.export import chrome_trace, chrome_trace_json, jsonl_events, \
    metrics_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

from tests.obs.test_tracer import FakeEngine


def drive(tracer: Tracer, engine: FakeEngine) -> None:
    """A tiny two-node scripted trace: root, nested work, remote child."""
    root = tracer.begin_root("T1", "a")
    engine.now = 1.0
    ds = tracer.begin("ds:op", "a", "DS", tid="T1")
    engine.now = 2.5
    tracer.end(ds)
    remote = tracer.begin("ds:op", "b", "DS", tid="T1", parent_id=root)
    engine.now = 4.0
    tracer.end(remote)
    tracer.network_event(4.5, "send", "a", "b", "tm.commit_req")
    tracer.end(root, committed=True)
    tracer.begin("dangling", "a", "RM")  # left open on purpose


def exported():
    engine = FakeEngine()
    tracer = Tracer(engine)
    drive(tracer, engine)
    return tracer, chrome_trace(tracer)


class TestChromeTrace:
    def test_process_and_thread_metadata(self):
        _, trace = exported()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["args"]["name"]) for e in meta}
        assert ("process_name", 1, "node a") in names
        assert ("process_name", 2, "node b") in names
        assert ("thread_name", 1, "APP") in names
        assert ("thread_name", 2, "DS") in names

    def test_timestamps_scaled_to_microseconds(self):
        _, trace = exported()
        ds = next(e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "ds:op"
                  and e["pid"] == 1)
        assert ds["ts"] == 1000
        assert ds["dur"] == 1500

    def test_open_span_closed_at_export_bound(self):
        tracer, trace = exported()
        dangling = next(e for e in trace["traceEvents"]
                        if e.get("name") == "dangling")
        assert dangling["args"]["open_at_export"] is True
        # bounded by the newest timestamp in the trace (the net event)
        assert dangling["ts"] + dangling["dur"] == \
            int(round(tracer.last_time_ms() * 1000))

    def test_parentage_and_family_survive_export(self):
        _, trace = exported()
        spans = {e["args"]["span_id"]: e for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        remote = next(e for e in spans.values()
                      if e["name"] == "ds:op" and e["pid"] == 2)
        assert spans[remote["args"]["parent_id"]]["name"] == "txn"
        assert remote["args"]["txn"] == "T1"

    def test_instant_event_shape(self):
        _, trace = exported()
        instant = next(e for e in trace["traceEvents"] if e["ph"] == "i")
        assert instant["name"] == "net.send"
        assert instant["s"] == "t"
        assert instant["args"]["op"] == "tm.commit_req"


class TestDeterminismAndJsonl:
    def test_identical_drives_export_identical_bytes(self):
        payloads = []
        for _ in range(2):
            engine = FakeEngine()
            tracer = Tracer(engine)
            drive(tracer, engine)
            payloads.append(chrome_trace_json(tracer))
        assert payloads[0] == payloads[1]
        json.loads(payloads[0])  # and it is valid JSON

    def test_jsonl_one_record_per_line_sorted_by_id(self):
        engine = FakeEngine()
        tracer = Tracer(engine)
        drive(tracer, engine)
        lines = jsonl_events(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(tracer.spans) + len(tracer.events)
        assert [r["id"] for r in records] == sorted(r["id"] for r in records)
        assert {r["type"] for r in records} == {"span", "event"}

    def test_metrics_json_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b", "x").inc()
        registry.counter("a", "x").inc()
        payload = metrics_json(registry)
        decoded = json.loads(payload)
        assert list(decoded["counters"]) == ["a/x", "b/x"]
