"""Unit tests for the DebitCredit schema, servers, and topology."""

import pytest

from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig, WorkloadConfig
from repro.core.facility import SEGMENT_VA_STRIDE
from repro.kernel.costs import ZERO_COST, ZERO_CPU
from repro.workloads import DebitCreditTopology, draw_spec
from repro.workloads.debitcredit import pages_for


def zero_cost_config(**overrides) -> TabsConfig:
    return TabsConfig(profile=ZERO_COST, cpu_costs=ZERO_CPU, **overrides)


def build(workload: WorkloadConfig):
    cluster = TabsCluster(zero_cost_config(workload=workload))
    topology = cluster.build_workload()
    return cluster, topology


class TestWorkloadConfig:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(schema="tpcc")

    @pytest.mark.parametrize("kwargs", [
        {"branches": 0},
        {"branches_per_node": 0},
        {"tellers_per_branch": 0},
        {"accounts_per_branch": 0},
        {"locality": 1.5},
        {"locality": -0.1},
        {"max_delta": 0},
        {"history_slots_per_teller": 0},
    ])
    def test_knob_floors(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_accounts_must_fit_one_segment(self):
        cells = SEGMENT_VA_STRIDE // 4
        WorkloadConfig(accounts_per_branch=cells)  # exactly full: fine
        with pytest.raises(ValueError):
            WorkloadConfig(accounts_per_branch=cells + 1)

    def test_history_must_fit_one_segment(self):
        with pytest.raises(ValueError):
            WorkloadConfig(tellers_per_branch=100,
                           history_slots_per_teller=SEGMENT_VA_STRIDE)

    def test_node_count_is_ceil_division(self):
        assert WorkloadConfig(branches=8, branches_per_node=3).nodes == 3
        assert WorkloadConfig(branches=8, branches_per_node=8).nodes == 1
        assert WorkloadConfig(branches=2).nodes == 2

    def test_millions_preset_spans_millions_of_accounts(self):
        preset = WorkloadConfig.millions()
        assert preset.total_accounts >= 4_000_000


class TestTopology:
    def test_branches_packed_onto_nodes(self):
        topology = DebitCreditTopology(branches=6, branches_per_node=2)
        assert topology.nodes == 3
        assert topology.node_names == ["bank0", "bank1", "bank2"]
        assert topology.node_name(0) == topology.node_name(1) == "bank0"
        assert topology.node_name(5) == "bank2"
        assert topology.branches_on("bank1") == [2, 3]

    def test_client_home_deals_nodes_first(self):
        topology = DebitCreditTopology(branches=6, branches_per_node=2)
        homes = [topology.client_home(c) for c in range(6)]
        # First three clients land on three different nodes.
        assert [topology.node_name(h) for h in homes[:3]] == \
            ["bank0", "bank1", "bank2"]
        assert sorted(homes) == [0, 1, 2, 3, 4, 5]

    def test_client_home_wraps_past_branch_count(self):
        topology = DebitCreditTopology(branches=3, branches_per_node=3)
        assert [topology.client_home(c) for c in range(5)] == \
            [0, 1, 2, 0, 1]


class TestDrawSpec:
    def test_locality_one_never_leaves_home(self):
        import random

        workload = WorkloadConfig(branches=4, locality=1.0)
        rng = random.Random(3)
        specs = [draw_spec(rng, workload, home_branch=2) for _ in range(50)]
        assert all(s.account_branch == 2 and not s.remote for s in specs)
        assert all(s.amount != 0 for s in specs)

    def test_locality_zero_always_remote(self):
        import random

        workload = WorkloadConfig(branches=4, locality=0.0)
        rng = random.Random(3)
        specs = [draw_spec(rng, workload, home_branch=2) for _ in range(50)]
        assert all(s.account_branch != 2 and s.remote for s in specs)

    def test_single_branch_cannot_be_remote(self):
        import random

        workload = WorkloadConfig(branches=1, locality=0.0)
        spec = draw_spec(random.Random(1), workload, home_branch=0)
        assert spec.account_branch == 0


class TestServers:
    @pytest.fixture(scope="class")
    def bank(self):
        return build(WorkloadConfig(branches=1, tellers_per_branch=2,
                                    accounts_per_branch=50))

    def test_add_to_balance_accumulates(self, bank):
        cluster, topology = bank

        def txn(tid):
            app = cluster.application("bank0")
            ref = yield from app.lookup_one("tellers0", node_name="bank0")
            reply = yield from app.call(ref, "add_to_balance",
                                        {"row": 1, "amount": 70}, tid)
            assert reply["balance"] == 70
            reply = yield from app.call(ref, "add_to_balance",
                                        {"row": 1, "amount": -30}, tid)
            return reply["balance"]

        assert cluster.run_transaction("bank0", txn) == 40

    def test_row_out_of_range_rejected(self, bank):
        cluster, topology = bank

        def txn(tid):
            app = cluster.application("bank0")
            ref = yield from app.lookup_one("accounts0", node_name="bank0")
            yield from app.call(ref, "add_to_balance",
                                {"row": 51, "amount": 1}, tid)

        with pytest.raises(Exception, match="outside"):
            cluster.run_transaction("bank0", txn)

    def test_history_append_assigns_slots_and_rolls_back(self, bank):
        cluster, topology = bank
        app = cluster.application("bank0")

        def append(amount, tid):
            ref = yield from app.lookup_one("history0", node_name="bank0")
            return (yield from app.call(
                ref, "append", {"strand": 0, "amount": amount, "branch": 0,
                                "teller": 1, "account": 1}, tid))

        def committed(tid):
            return (yield from append(11, tid))

        assert cluster.run_transaction("bank0", committed)["slot"] == 0

        def aborted():
            tid = yield from app.begin_transaction()
            yield from append(99, tid)
            yield from app.abort_transaction(tid)

        cluster.run_on("bank0", aborted())

        def read(tid):
            ref = yield from app.lookup_one("history0", node_name="bank0")
            count = yield from app.call(ref, "strand_count", {"strand": 0},
                                        tid)
            row = yield from app.call(ref, "read_row",
                                      {"strand": 0, "slot": 0}, tid)
            return count["count"], row["row"]

        count, row = cluster.run_transaction("bank0", read)
        assert count == 1  # the aborted append's cursor bump rolled back
        assert row == [11, 0, 1, 1]

    def test_history_strand_capacity_enforced(self):
        cluster, topology = build(WorkloadConfig(
            branches=1, tellers_per_branch=1, history_slots_per_teller=2))
        app = cluster.application("bank0")

        def fill(tid):
            ref = yield from app.lookup_one("history0", node_name="bank0")
            for _ in range(3):
                yield from app.call(
                    ref, "append", {"strand": 0, "amount": 1, "branch": 0,
                                    "teller": 1, "account": 1}, tid)

        with pytest.raises(Exception, match="full"):
            cluster.run_transaction("bank0", fill)


class TestBuild:
    def test_pages_for_rounds_up(self):
        assert pages_for(1) == 1
        assert pages_for(128) == 1   # 128 4-byte cells fill one 512B page
        assert pages_for(129) == 2

    def test_build_places_four_servers_per_branch(self):
        cluster, topology = build(WorkloadConfig(branches=4,
                                                 branches_per_node=2,
                                                 accounts_per_branch=50))
        assert sorted(cluster.nodes) == ["bank0", "bank1"]
        names = {name for tabs_node in cluster.nodes.values()
                 for name in tabs_node.servers}
        for branch in range(4):
            assert {f"branch{branch}", f"tellers{branch}",
                    f"accounts{branch}", f"history{branch}"} <= names
