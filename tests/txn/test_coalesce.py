"""Unit tests for 2PC datagram coalescing (the grouped pipeline)."""

import dataclasses

import pytest

from repro import TabsCluster
from repro.core.config import CommitConfig
from repro.kernel.messages import Message
from repro.kernel.ports import Port
from repro.servers.int_array import IntegerArrayServer
from repro.txn.coalesce import DatagramCoalescer
from repro.txn.ids import TransactionID
from tests.property.conftest import fast_config


def build(commit: CommitConfig | None = None, nodes: int = 1):
    cluster = TabsCluster(fast_config() if commit is None
                          else fast_config(commit=commit))
    for index in range(1, nodes + 1):
        cluster.add_node(f"n{index}")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


@pytest.fixture
def spy_coalescer():
    """A coalescer whose transmissions are captured instead of sent."""
    cluster = build(CommitConfig.grouped())
    coalescer = DatagramCoalescer(cluster.node("n1").node)
    sent: list[tuple[str, Message]] = []
    coalescer._transmit = lambda target, payload: \
        sent.append((target, payload))
    return cluster, coalescer, sent


def payload(op: str = "tm.vote", seq: int = 1) -> Message:
    return Message(op=op, tid=TransactionID("n1", seq),
                   body={"service": "transaction_manager", "from": "n1",
                         "tid": TransactionID("n1", seq)})


class TestInstallation:
    def test_paper_config_installs_no_coalescer(self):
        cluster = build()
        assert cluster.node("n1").tm._coalescer is None

    def test_grouped_config_installs_coalescer(self):
        cluster = build(CommitConfig.grouped())
        assert cluster.node("n1").tm._coalescer is not None

    def test_coalescing_can_be_disabled(self):
        commit = dataclasses.replace(CommitConfig.grouped(),
                                     coalesce_datagrams=False)
        cluster = build(commit)
        assert cluster.node("n1").tm._coalescer is None


class TestBatching:
    def test_lone_payload_travels_unwrapped(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        message = payload()
        coalescer.send("n2", message)
        cluster.settle()
        assert sent == [("n2", message)]
        assert coalescer.batches == 0

    def test_same_instant_payloads_share_one_datagram(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        first, second, third = (payload(seq=i) for i in (1, 2, 3))
        coalescer.send("n2", first)
        coalescer.send("n2", second)
        coalescer.send("n2", third)
        cluster.settle()
        assert len(sent) == 1
        target, batch = sent[0]
        assert target == "n2"
        assert batch.op == "tm.batch"
        assert batch.body["service"] == "transaction_manager"
        assert batch.body["payloads"] == [first, second, third]
        assert coalescer.batches == 1
        assert coalescer.coalesced == 3

    def test_distinct_targets_stay_separate(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        coalescer.send("n2", payload(seq=1))
        coalescer.send("n3", payload(seq=2))
        cluster.settle()
        assert {target for target, _ in sent} == {"n2", "n3"}
        assert all(message.op != "tm.batch" for _, message in sent)

    def test_later_instant_opens_a_new_batch(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        coalescer.send("n2", payload(seq=1))
        cluster.settle()
        coalescer.send("n2", payload(seq=2))
        cluster.settle()
        assert len(sent) == 2

    def test_crash_drops_queued_datagrams(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        coalescer.send("n2", payload(seq=1))
        coalescer.send("n2", payload(seq=2))
        cluster.node("n1").crash()
        cluster.settle()
        assert sent == []

    def test_batch_counts_land_in_metrics(self, spy_coalescer):
        cluster, coalescer, sent = spy_coalescer
        coalescer.send("n2", payload(seq=1))
        coalescer.send("n2", payload(seq=2))
        cluster.settle()
        metrics = cluster.metrics
        assert metrics.counter("n1", "txn.coalesced_datagrams").value == 2
        assert metrics.counter("n1", "txn.batch_datagrams").value == 1


class TestBatchDispatch:
    def test_handle_batch_dispatches_every_payload(self):
        """A ``tm.batch`` arriving at the TM unpacks to its handlers:
        two batched aborts are both acknowledged."""
        cluster = build(CommitConfig.grouped())
        tm = cluster.node("n1").tm
        replies = [Port(cluster.ctx, node=cluster.node("n1").node)
                   for _ in range(2)]
        inner = [Message(op="tm.abort",
                         body={"tid": TransactionID("n1", 900 + index)},
                         reply_to=reply)
                 for index, reply in enumerate(replies)]
        tm.port.send(Message(op="tm.batch",
                             body={"service": "transaction_manager",
                                   "from": "n1", "payloads": inner}))
        for reply in replies:
            body = cluster.engine.run_until(reply.receive()).body
            assert body.get("aborted")

    def test_nested_batch_payloads_are_ignored(self):
        """Defense in depth: a batch inside a batch does not recurse."""
        cluster = build(CommitConfig.grouped())
        tm = cluster.node("n1").tm
        nested = Message(op="tm.batch",
                         body={"service": "transaction_manager",
                               "from": "n1", "payloads": []})
        tm.port.send(Message(op="tm.batch",
                             body={"service": "transaction_manager",
                                   "from": "n1", "payloads": [nested]}))
        cluster.settle()  # nothing to assert beyond not recursing/crashing
