"""Tests for transaction identifiers."""

from repro.txn.ids import NULL_TID, TidFactory, TransactionID


def test_toplevel_identity():
    tid = TransactionID("n1", 7)
    assert tid.is_toplevel
    assert tid.toplevel == tid
    assert tid.parent is None
    assert str(tid) == "n1.7"


def test_null_tid():
    assert NULL_TID.is_null
    assert not TransactionID("n1", 1).is_null


def test_child_and_parent():
    tid = TransactionID("n1", 7)
    child = tid.child(1)
    grandchild = child.child(2)
    assert child.parent == tid
    assert grandchild.parent == child
    assert grandchild.toplevel == tid
    assert str(grandchild) == "n1.7/1/2"


def test_ancestry():
    tid = TransactionID("n1", 7)
    child = tid.child(1)
    assert tid.is_ancestor_of(child)
    assert tid.is_ancestor_of(child.child(3))
    assert not tid.is_ancestor_of(tid)
    assert not child.is_ancestor_of(tid)
    assert not tid.is_ancestor_of(TransactionID("n2", 7).child(1))


def test_factory_allocates_unique_toplevels():
    factory = TidFactory("n1")
    tids = {factory.new_toplevel() for _ in range(100)}
    assert len(tids) == 100
    assert all(t.node == "n1" for t in tids)


def test_factories_on_different_nodes_never_collide():
    a, b = TidFactory("a"), TidFactory("b")
    assert a.new_toplevel() != b.new_toplevel()


def test_epoch_prevents_post_crash_collisions():
    before = TidFactory("n1", epoch=0)
    first = before.new_toplevel()
    after = TidFactory("n1", epoch=1)  # fresh counter, bumped epoch
    assert after.new_toplevel() != first


def test_subtransaction_indices_count_per_parent():
    factory = TidFactory("n1")
    parent = factory.new_toplevel()
    other = factory.new_toplevel()
    first = factory.new_subtransaction(parent)
    second = factory.new_subtransaction(parent)
    assert first != second
    assert factory.new_subtransaction(other).path == (1,)


def test_ordering_is_total():
    ids = [TransactionID("b", 1), TransactionID("a", 2),
           TransactionID("a", 1), TransactionID("a", 1, (1,))]
    ordered = sorted(ids)
    assert ordered[0] == TransactionID("a", 1)
