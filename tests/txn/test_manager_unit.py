"""Unit-level tests of Transaction Manager message handlers."""

import pytest

from repro import TabsCluster
from repro.kernel.messages import Message
from repro.kernel.ports import Port
from repro.servers.int_array import IntegerArrayServer
from repro.txn.ids import TransactionID
from repro.txn.status import TxnPhase
from tests.property.conftest import fast_config


@pytest.fixture
def env():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster, cluster.node("n1").tm, cluster.application("n1")


def request(cluster, tm, op, body):
    reply = Port(cluster.ctx, node=cluster.node("n1").node)
    tm.port.send(Message(op=op, body=body, reply_to=reply))
    return cluster.engine.run_until(reply.receive()).body


def test_query_status_of_unknown_transaction(env):
    cluster, tm, app = env
    body = request(cluster, tm, "tm.query_status",
                   {"tid": TransactionID("n1", 999)})
    assert body["phase"] == "unknown"


def test_query_status_of_active_transaction(env):
    cluster, tm, app = env
    tid = cluster.run_on("n1", app.begin_transaction())
    body = request(cluster, tm, "tm.query_status", {"tid": tid})
    assert body["phase"] == "active"


def test_join_of_unknown_toplevel_rejected(env):
    cluster, tm, app = env
    port = Port(cluster.ctx, node=cluster.node("n1").node)
    body = request(cluster, tm, "tm.join",
                   {"tid": TransactionID("elsewhere", 5),
                    "server": "x", "port": port})
    assert "error" in body


def test_join_of_foreign_subtransaction_creates_state(env):
    """A remote subtransaction's first operation here is tracked under
    its own identifier."""
    cluster, tm, app = env
    sub = TransactionID("elsewhere", 5).child(1)
    port = Port(cluster.ctx, node=cluster.node("n1").node)
    body = request(cluster, tm, "tm.join",
                   {"tid": sub, "server": "x", "port": port})
    assert body.get("ok")
    assert tm.phase_of(sub) is TxnPhase.ACTIVE


def test_outcome_query_for_unknown_transaction_presumes_abort(env):
    """Presumed abort: no state means no commit."""
    cluster, tm, app = env
    # Deliver an outcome query as the datagram path would.
    tm.port.send(Message(op="tm.outcome_query",
                         body={"tid": TransactionID("other", 9),
                               "from": "n1"}))
    cluster.settle()
    # The reply datagram loops back to our own TM (from == n1); nothing to
    # assert beyond it not crashing, but the commit counter is unchanged.
    assert tm.commits == 0


def test_abort_unknown_transaction_is_acknowledged(env):
    cluster, tm, app = env
    body = request(cluster, tm, "tm.abort",
                   {"tid": TransactionID("n1", 12345)})
    assert body["aborted"] is True


def test_transactions_with_server_filters_prepared_and_terminal(env):
    cluster, tm, app = env
    from repro.txn.status import TransactionState

    active = TransactionState(TransactionID("n1", 1))
    active.servers.add("srv")
    prepared = TransactionState(TransactionID("n1", 2),
                                phase=TxnPhase.PREPARED)
    prepared.servers.add("srv")
    done = TransactionState(TransactionID("n1", 3),
                            phase=TxnPhase.COMMITTED)
    done.servers.add("srv")
    tm._states.update({state.tid: state
                       for state in (active, prepared, done)})
    assert tm.transactions_with_server("srv") == [active.tid]


def test_rebind_server_port_updates_every_transaction(env):
    cluster, tm, app = env
    old_port = Port(cluster.ctx, node=cluster.node("n1").node)
    new_port = Port(cluster.ctx, node=cluster.node("n1").node)
    for seq in (1, 2):
        tm._server_ports[TransactionID("n1", seq)] = {"srv": old_port}
    tm.rebind_server_port("srv", new_port)
    assert all(ports["srv"] is new_port
               for ports in tm._server_ports.values())


def test_commit_request_for_unknown_transaction_acks_blindly(env):
    """Phase-two requests may be retried after the subordinate already
    committed and forgot; the ack must still flow."""
    cluster, tm, app = env
    tm.port.send(Message(op="tm.commit_req",
                         body={"tid": TransactionID("other", 7),
                               "from": "n1"}))
    cluster.settle()  # no crash, ack datagram sent back


def test_checkpoint_counter_resets(env):
    cluster, tm, app = env
    tm.checkpoint_every_commits = 2
    rm = cluster.node("n1").rm
    baseline = rm.checkpoints_taken

    def one():
        tid = yield from app.begin_transaction()
        yield from app.end_transaction(tid)

    for _ in range(5):
        cluster.run_on("n1", one())
    cluster.settle()
    assert rm.checkpoints_taken - baseline == 2
