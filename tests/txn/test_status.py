"""Tests for the per-transaction phase machine."""

import pytest

from repro.errors import TransactionError
from repro.txn.ids import TransactionID
from repro.txn.status import TransactionState, TxnPhase


def make_state():
    return TransactionState(TransactionID("n1", 1))


def test_initial_phase_is_active():
    assert make_state().phase is TxnPhase.ACTIVE


@pytest.mark.parametrize("path", [
    (TxnPhase.PREPARING, TxnPhase.PREPARED, TxnPhase.COMMITTED),
    (TxnPhase.PREPARING, TxnPhase.ABORTED),
    (TxnPhase.COMMITTED,),
    (TxnPhase.ABORTED,),
    (TxnPhase.PREPARING, TxnPhase.PREPARED, TxnPhase.ABORTED),
])
def test_legal_paths(path):
    state = make_state()
    for phase in path:
        state.advance(phase)
    assert state.phase is path[-1]


@pytest.mark.parametrize("first,second", [
    (TxnPhase.COMMITTED, TxnPhase.ABORTED),
    (TxnPhase.ABORTED, TxnPhase.COMMITTED),
    (TxnPhase.COMMITTED, TxnPhase.PREPARED),
    (TxnPhase.ABORTED, TxnPhase.PREPARING),
])
def test_terminal_states_are_final(first, second):
    state = make_state()
    state.advance(first)
    with pytest.raises(TransactionError):
        state.advance(second)


def test_prepared_cannot_return_to_active():
    state = make_state()
    state.advance(TxnPhase.PREPARED)
    with pytest.raises(TransactionError):
        state.advance(TxnPhase.PREPARING)


def test_terminal_property():
    assert TxnPhase.COMMITTED.terminal
    assert TxnPhase.ABORTED.terminal
    assert not TxnPhase.PREPARED.terminal
    assert not TxnPhase.ACTIVE.terminal


def test_root_detection():
    state = make_state()
    assert state.is_root
    state.parent_node = "elsewhere"
    assert not state.is_root
