"""Tests for the duplexed log store's stable-storage behaviour.

The content path (append/read/truncate ordering, capacity) is covered in
``test_log.py``; here the subject is the *media*: duplex repair on read,
salvage truncation of a torn tail, and the fault-injection surface the
chaos controller drives.
"""

import pytest

from repro.errors import LogMediaCorruption
from repro.wal.records import ValueUpdateRecord
from repro.wal.store import LogStore


def filled_store(count=4):
    store = LogStore()
    records = [ValueUpdateRecord(tid="t", old_value=0, new_value=i)
               for i in range(count)]
    for i, record in enumerate(records, start=1):
        record.lsn = i
    store.append(records)
    return store


def torn_record(lsn):
    record = ValueUpdateRecord(tid="t", old_value=0, new_value=99)
    record.lsn = lsn
    return record


# -- duplexed read path --------------------------------------------------------


@pytest.mark.parametrize("copy", [0, 1])
def test_single_copy_rot_is_repaired_on_read(copy):
    store = filled_store()
    assert store.rot_media(2, copy=copy)
    assert not store.media_intact()
    assert [r.lsn for r in store.read_forward()] == [1, 2, 3, 4]
    assert store.duplex_repairs == 1
    assert store.media_intact()


def test_both_copy_rot_of_durable_record_raises():
    store = filled_store()
    assert store.rot_media(2, both_copies=True)
    with pytest.raises(LogMediaCorruption):
        store.read_forward()


def test_rot_media_without_media_returns_false():
    store = filled_store()
    assert not store.rot_media(99)


def test_repair_is_lazy_and_one_shot():
    store = filled_store()
    store.rot_media(3, copy=1)
    store.read_forward()
    store.read_backward()
    assert store.duplex_repairs == 1


# -- salvage -------------------------------------------------------------------


def test_salvage_repairs_single_copy_damage_without_truncating():
    store = filled_store()
    store.rot_media(1, copy=0)
    store.rot_media(4, copy=1)
    report = store.salvage()
    assert report.repairs == 2
    assert not report.truncated
    assert store.media_intact()
    assert len(store) == 4


def test_salvage_truncates_at_torn_tail():
    store = filled_store(count=2)
    store.append_torn(torn_record(3))
    # The torn record was never acknowledged: not durable content.
    assert store.last_lsn == 2
    report = store.salvage()
    assert report.truncated_from_lsn == 3
    assert report.dropped_records == 0
    assert store.salvage_truncations == 1
    assert store.media_intact()
    assert [r.lsn for r in store.read_forward()] == [1, 2]


def test_salvage_drops_durable_records_past_both_copy_damage():
    """Both-copies loss below the durable tail: the log must still end at
    an intact prefix, so acknowledged records are dropped (the loss then
    surfaces in the recovery audits, not here)."""
    store = filled_store()
    store.rot_media(3, both_copies=True)
    report = store.salvage()
    assert report.truncated_from_lsn == 3
    assert report.dropped_records == 2
    assert [r.lsn for r in store.read_forward()] == [1, 2]


def test_torn_append_never_reaches_observers():
    store = filled_store(count=1)
    seen = []
    store.observers.append(seen.append)
    store.append_torn(torn_record(2))
    assert seen == []
    assert store.last_lsn == 1


# -- bookkeeping ---------------------------------------------------------------


def test_truncation_reclaims_damaged_media():
    store = filled_store()
    store.rot_media(1, both_copies=True)
    store.truncate_before(3)
    # The damage fell below the truncation point: nothing left to repair.
    assert store.media_intact()
    assert [r.lsn for r in store.read_forward(3)] == [3, 4]
    assert store.duplex_repairs == 0


def test_media_observer_sees_repair_and_salvage_events():
    events = []
    store = filled_store(count=2)
    store.media_observer = lambda kind, count=1: events.append(kind)
    store.rot_media(2, copy=0)
    store.read_forward()
    store.append_torn(torn_record(3))
    store.salvage()
    assert events == ["wal.duplex_repairs", "wal.salvage_truncations"]
