"""Tests for log record types."""

from repro.kernel.messages import MessageKind, classify_size
from repro.kernel.vm import ObjectID
from repro.wal.records import (
    CheckpointRecord,
    OperationRecord,
    RecordKind,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)


def test_value_record_kind_and_fields():
    oid = ObjectID("seg", 0, 4)
    record = ValueUpdateRecord(tid="t1", server="array", oid=oid,
                               old_value=1, new_value=2)
    assert record.kind is RecordKind.VALUE_UPDATE
    assert record.old_value == 1 and record.new_value == 2


def test_value_record_with_page_sized_values_is_large_message():
    """Old+new page images push the carrying message into the large class."""
    page_image = bytes(480)
    record = ValueUpdateRecord(old_value=page_image, new_value=page_image)
    assert classify_size(record.size_bytes()) is MessageKind.LARGE


def test_small_value_record_is_still_nontrivial():
    record = ValueUpdateRecord(old_value=1, new_value=2)
    assert record.size_bytes() >= 64


def test_operation_record_carries_inverse():
    record = OperationRecord(
        tid="t1", server="queue", operation="enqueue", redo_args=(5,),
        undo_operation="unenqueue", undo_args=(5,),
        oids=(ObjectID("seg", 0, 4), ObjectID("seg", 512, 4)))
    assert record.kind is RecordKind.OPERATION
    assert record.undo_operation == "unenqueue"
    assert len(record.oids) == 2


def test_status_record_defaults():
    record = TransactionStatusRecord(tid="t1", status=TxnStatus.PREPARED,
                                     servers=("a", "b"), coordinator="node2")
    assert record.kind is RecordKind.TXN_STATUS
    assert record.status is TxnStatus.PREPARED
    assert record.servers == ("a", "b")


def test_checkpoint_record_contents():
    record = CheckpointRecord(
        dirty_pages={("seg", 0): 10, ("seg", 3): 12},
        active_transactions={"t1": "active"},
        attached_servers={"array": "seg"})
    assert record.kind is RecordKind.CHECKPOINT
    assert record.size_bytes() > 64


def test_lsn_defaults_to_unassigned():
    assert ValueUpdateRecord().lsn == 0
    assert ValueUpdateRecord().prev_lsn == 0
