"""Property tests for the log-record wire codec.

For every record kind: ``decode(encode(r))`` reproduces the record exactly
(and hence ``encode`` is deterministic: re-encoding the decoded record
yields the identical bytes), and every truncation of an encoded record is
rejected with :class:`WalCodecError` rather than misread.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WalCodecError
from repro.kernel.vm import ObjectID
from repro.txn.ids import TransactionID
from repro.wal.codec import (
    decode_record,
    decode_records,
    encode_record,
    encode_records,
)
from repro.wal.records import (
    CheckpointRecord,
    OperationRecord,
    PageDirtyRecord,
    ServerPrepareRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)

# -- strategies ---------------------------------------------------------------------

names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x24F),
    max_size=12)

tids = st.builds(TransactionID, node=names, seq=st.integers(0, 2**40),
                 path=st.lists(st.integers(0, 50), max_size=3)
                 .map(tuple))

oids = st.builds(ObjectID, segment_id=names,
                 offset=st.integers(0, 2**24), length=st.integers(1, 4096))

#: anything a server may put in a logged value
values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(-2**70, 2**70), st.floats(allow_nan=False),
              names, st.binary(max_size=32), tids, oids),
    lambda leaf: st.one_of(
        st.lists(leaf, max_size=4),
        st.lists(leaf, max_size=4).map(tuple),
        st.dictionaries(st.one_of(names, st.integers(-100, 100)), leaf,
                        max_size=4)),
    max_leaves=8)

headers = {"tid": st.one_of(st.none(), tids),
           "lsn": st.integers(0, 2**32),
           "prev_lsn": st.integers(0, 2**32)}

value_updates = st.builds(
    ValueUpdateRecord, server=names, oid=st.one_of(st.none(), oids),
    old_value=values, new_value=values, **headers)

operations = st.builds(
    OperationRecord, server=names, operation=names,
    redo_args=st.lists(values, max_size=3).map(tuple),
    undo_operation=names,
    undo_args=st.lists(values, max_size=3).map(tuple),
    oids=st.lists(oids, max_size=3).map(tuple),
    compensates_lsn=st.integers(0, 2**32), **headers)

statuses = st.builds(
    TransactionStatusRecord, status=st.sampled_from(TxnStatus),
    servers=st.lists(names, max_size=3).map(tuple),
    coordinator=names,
    children=st.lists(names, max_size=3).map(tuple),
    merged_into=st.one_of(st.none(), tids), **headers)

checkpoints = st.builds(
    CheckpointRecord,
    dirty_pages=st.dictionaries(
        st.tuples(names, st.integers(0, 5000)), st.integers(1, 2**32),
        max_size=4),
    active_transactions=st.dictionaries(
        tids, st.sampled_from(["active", "prepared", "committed"]),
        max_size=4),
    attached_servers=st.dictionaries(names, names, max_size=4), **headers)

page_dirties = st.builds(PageDirtyRecord, segment_id=names,
                         page=st.integers(0, 5000), **headers)

server_prepares = st.builds(ServerPrepareRecord, server=names,
                            oids=st.lists(oids, max_size=4).map(tuple),
                            **headers)

records = st.one_of(value_updates, operations, statuses, checkpoints,
                    page_dirties, server_prepares)


# -- round trips --------------------------------------------------------------------


@settings(max_examples=200)
@given(records)
def test_roundtrip_identity(record):
    encoded = encode_record(record)
    decoded = decode_record(encoded)
    assert decoded == record
    assert decoded.kind is record.kind
    assert encode_record(decoded) == encoded


@settings(max_examples=100)
@given(records)
def test_every_truncation_is_rejected(record):
    encoded = encode_record(record)
    for cut in range(len(encoded)):
        with pytest.raises(WalCodecError):
            decode_record(encoded[:cut])


@settings(max_examples=100)
@given(records, st.binary(min_size=1, max_size=8))
def test_trailing_garbage_is_rejected(record, garbage):
    with pytest.raises(WalCodecError):
        decode_record(encode_record(record) + garbage)


@settings(max_examples=50)
@given(st.lists(records, max_size=5))
def test_stream_roundtrip(batch):
    assert decode_records(encode_records(batch)) == batch


@settings(max_examples=50)
@given(st.lists(records, min_size=1, max_size=3), st.data())
def test_truncated_stream_is_rejected(batch, data):
    encoded = encode_records(batch)
    # A cut at a frame boundary is a legal, shorter stream; any other cut
    # must be detected as truncation.
    boundaries = set()
    pos = 0
    for record in batch:
        pos += len(encode_record(record))
        boundaries.add(pos)
    cut = data.draw(st.integers(1, len(encoded) - 1)
                    .filter(lambda c: c not in boundaries), label="cut")
    with pytest.raises(WalCodecError):
        decode_records(encoded[:cut])


# -- explicit corner cases -----------------------------------------------------------


def test_unknown_kind_tag_rejected():
    encoded = bytearray(encode_record(PageDirtyRecord(segment_id="s")))
    encoded[4] = 0xEE  # the kind tag follows the 4-byte frame length
    with pytest.raises(WalCodecError):
        decode_record(bytes(encoded))


def test_unknown_value_tag_rejected():
    encoded = bytearray(encode_record(PageDirtyRecord(segment_id="s")))
    encoded[5] = 0xEE  # first value tag (the tid)
    with pytest.raises(WalCodecError):
        decode_record(bytes(encoded))


def test_empty_buffer_rejected():
    with pytest.raises(WalCodecError):
        decode_record(b"")


def test_unencodable_value_rejected():
    record = ValueUpdateRecord(old_value=object())
    with pytest.raises(WalCodecError):
        encode_record(record)


def test_large_and_negative_ints_roundtrip():
    record = ValueUpdateRecord(old_value=-(2**200), new_value=2**200 + 1)
    assert decode_record(encode_record(record)) == record
