"""Tests for the log store and the buffered write-ahead log."""

import pytest

from repro.errors import LogFull, WriteAheadLogError
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive
from repro.sim import Process
from repro.wal.log import WriteAheadLog
from repro.wal.records import TransactionStatusRecord, TxnStatus, ValueUpdateRecord
from repro.wal.store import LogStore


@pytest.fixture
def ctx():
    return SimContext()


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def make_record(tid="t", old=0, new=1):
    return ValueUpdateRecord(tid=tid, old_value=old, new_value=new)


class TestLogStore:
    def test_append_and_read_forward(self):
        store = LogStore()
        records = [make_record() for _ in range(3)]
        for i, record in enumerate(records, start=1):
            record.lsn = i
        store.append(records)
        assert [r.lsn for r in store.read_forward()] == [1, 2, 3]
        assert [r.lsn for r in store.read_forward(2)] == [2, 3]

    def test_read_backward(self):
        store = LogStore()
        records = [make_record() for _ in range(3)]
        for i, record in enumerate(records, start=1):
            record.lsn = i
        store.append(records)
        assert [r.lsn for r in store.read_backward()] == [3, 2, 1]
        assert [r.lsn for r in store.read_backward(2)] == [2, 1]

    def test_out_of_order_append_rejected(self):
        store = LogStore()
        first, second = make_record(), make_record()
        first.lsn, second.lsn = 5, 5
        store.append([first])
        with pytest.raises(WriteAheadLogError):
            store.append([second])

    def test_capacity_enforced(self):
        store = LogStore(capacity_records=2)
        records = [make_record() for _ in range(3)]
        for i, record in enumerate(records, start=1):
            record.lsn = i
        with pytest.raises(LogFull):
            store.append(records)

    def test_truncate_reclaims_and_blocks_reclaimed_reads(self):
        store = LogStore()
        records = [make_record() for _ in range(5)]
        for i, record in enumerate(records, start=1):
            record.lsn = i
        store.append(records)
        assert store.truncate_before(4) == 3
        assert [r.lsn for r in store.read_forward(4)] == [4, 5]
        with pytest.raises(WriteAheadLogError):
            store.read_forward(1)

    def test_record_at(self):
        store = LogStore()
        record = make_record()
        record.lsn = 1
        store.append([record])
        assert store.record_at(1) is record
        with pytest.raises(WriteAheadLogError):
            store.record_at(9)


class TestWriteAheadLog:
    def test_append_assigns_monotonic_lsns(self, ctx):
        log = WriteAheadLog(ctx)
        assert log.append(make_record()) == 1
        assert log.append(make_record()) == 2
        assert log.last_lsn == 2
        assert log.flushed_lsn == 0

    def test_append_is_free(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record())
        assert ctx.engine.now == 0.0
        assert not ctx.meter.counts

    def test_force_makes_records_durable_and_charges_one_stable_write(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record())
        log.append(make_record())
        run(ctx, log.force())
        assert log.flushed_lsn == 2
        assert log.buffered_count == 0
        assert ctx.meter.count(Primitive.STABLE_STORAGE_WRITE) == 1
        assert ctx.engine.now == MEASURED_1985.time_of(
            Primitive.STABLE_STORAGE_WRITE)

    def test_partial_force(self, ctx):
        log = WriteAheadLog(ctx)
        for _ in range(3):
            log.append(make_record())
        run(ctx, log.force(up_to_lsn=2))
        assert log.flushed_lsn == 2
        assert log.buffered_count == 1

    def test_force_of_already_durable_prefix_is_free(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record())
        run(ctx, log.force())
        before = ctx.engine.now
        run(ctx, log.force(up_to_lsn=1))
        assert ctx.engine.now == before
        assert log.forces == 1

    def test_crash_loses_buffer_keeps_durable_prefix(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record(tid="durable"))
        run(ctx, log.force())
        log.append(make_record(tid="volatile"))
        log.crash()
        survivors = [r.tid for r in log.read_forward()]
        assert survivors == ["durable"]

    def test_restart_continues_lsn_sequence(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record())
        log.append(make_record())
        run(ctx, log.force())
        log.append(make_record())  # lsn 3, lost in the crash
        log.crash()
        fresh = WriteAheadLog.after_restart(ctx, log.store)
        # The new log must not reuse LSN 3's slot ambiguously: next LSN
        # continues from the durable prefix.
        assert fresh.append(make_record()) == 3
        run(ctx, fresh.force())
        assert fresh.flushed_lsn == 3

    def test_buffer_full_hook_fires(self, ctx):
        log = WriteAheadLog(ctx, buffer_capacity=2)
        fired = []
        log.on_buffer_full = lambda: fired.append(True)
        log.append(make_record())
        assert not fired
        log.append(make_record())
        assert fired

    def test_mixed_record_kinds_interleave(self, ctx):
        log = WriteAheadLog(ctx)
        log.append(make_record(tid="t1"))
        log.append(TransactionStatusRecord(tid="t1",
                                           status=TxnStatus.COMMITTED))
        run(ctx, log.force())
        kinds = [type(r).__name__ for r in log.read_forward()]
        assert kinds == ["ValueUpdateRecord", "TransactionStatusRecord"]

    def test_backward_chain_via_prev_lsn(self, ctx):
        """Abort processing follows the per-transaction backward chain."""
        log = WriteAheadLog(ctx)
        last = 0
        for value in range(3):
            record = make_record(tid="t1", old=value, new=value + 1)
            record.prev_lsn = last
            last = log.append(record)
        run(ctx, log.force())
        chain = []
        lsn = last
        while lsn:
            record = log.store.record_at(lsn)
            chain.append(record.new_value)
            lsn = record.prev_lsn
        assert chain == [3, 2, 1]
