"""Unit tests for the pluggable log-force pipelines (group commit)."""

import pytest

from repro.core.config import CommitConfig
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive
from repro.sim import Process, Timeout
from repro.wal.log import WriteAheadLog
from repro.wal.pipeline import (
    GroupCommitPipeline,
    PaperForcePipeline,
    make_force_pipeline,
)
from repro.wal.records import ValueUpdateRecord

STABLE_WRITE_MS = MEASURED_1985.time_of(Primitive.STABLE_STORAGE_WRITE)


@pytest.fixture
def ctx():
    return SimContext()


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def make_record(tid="t"):
    return ValueUpdateRecord(tid=tid, old_value=0, new_value=1)


def grouped_log(ctx, window_ms=2.0, batch_cap=64, node_name=""):
    commit = CommitConfig(pipeline="grouped", force_window_ms=window_ms,
                          force_batch_cap=batch_cap)
    return WriteAheadLog(ctx, node_name=node_name, commit=commit)


class TestPipelineSelection:
    def test_default_is_paper(self, ctx):
        assert isinstance(WriteAheadLog(ctx).pipeline, PaperForcePipeline)
        assert WriteAheadLog(ctx).group_pipeline is None

    def test_none_config_is_paper(self, ctx):
        log = WriteAheadLog(ctx)
        assert isinstance(make_force_pipeline(log, None),
                          PaperForcePipeline)

    def test_grouped_config_installs_group_pipeline(self, ctx):
        log = grouped_log(ctx, window_ms=3.5, batch_cap=7)
        pipeline = log.group_pipeline
        assert isinstance(pipeline, GroupCommitPipeline)
        assert pipeline.window_ms == 3.5
        assert pipeline.batch_cap == 7


class TestGroupCommit:
    def test_concurrent_forces_coalesce_into_one_stable_write(self, ctx):
        log = grouped_log(ctx, window_ms=2.0)
        lsns = [log.append(make_record()) for _ in range(4)]
        processes = [Process(ctx.engine, log.force(lsn)) for lsn in lsns]
        for process in processes:
            ctx.engine.run_until(process)
        assert ctx.meter.count(Primitive.STABLE_STORAGE_WRITE) == 1
        assert log.forces == 1
        assert log.flushed_lsn == lsns[-1]
        assert log.group_pipeline.batches == 1
        assert log.group_pipeline.coalesced == 4

    def test_window_delays_a_lone_force(self, ctx):
        log = grouped_log(ctx, window_ms=2.0)
        log.append(make_record())
        run(ctx, log.force())
        assert ctx.engine.now == pytest.approx(2.0 + STABLE_WRITE_MS)

    def test_batch_cap_flushes_without_waiting_for_window(self, ctx):
        log = grouped_log(ctx, window_ms=1_000.0, batch_cap=3)
        lsns = [log.append(make_record()) for _ in range(3)]
        processes = [Process(ctx.engine, log.force(lsn)) for lsn in lsns]
        for process in processes:
            ctx.engine.run_until(process)
        # Flushed at the cap: well before the huge window would expire.
        assert ctx.engine.now == pytest.approx(STABLE_WRITE_MS)
        assert log.forces == 1

    def test_forces_after_first_batch_keep_working(self, ctx):
        log = grouped_log(ctx)
        log.append(make_record())
        run(ctx, log.force())
        second = log.append(make_record())
        run(ctx, log.force(second))
        assert log.forces == 2
        assert log.flushed_lsn == second

    def test_group_force_hook_sees_batch(self, ctx):
        log = grouped_log(ctx, node_name="n9")
        seen = []
        log.group_pipeline.on_group_force.append(
            lambda node, size, lsn: seen.append((node, size, lsn)))
        lsns = [log.append(make_record()) for _ in range(2)]
        processes = [Process(ctx.engine, log.force(lsn)) for lsn in lsns]
        for process in processes:
            ctx.engine.run_until(process)
        assert seen == [("n9", 2, lsns[-1])]

    def test_crash_inside_window_forces_nothing(self, ctx):
        log = grouped_log(ctx, window_ms=5.0)
        log.append(make_record())
        Process(ctx.engine, log.force())
        # Crash before the window expires: the request is queued but no
        # stable write has begun.
        ctx.engine.schedule(1.0, log.crash)
        ctx.engine.drain(1_000.0)
        assert ctx.meter.count(Primitive.STABLE_STORAGE_WRITE) == 0
        assert log.flushed_lsn == 0
        assert len(log.store) == 0

    def test_crash_hook_aborts_flush_before_stable_write(self, ctx):
        """A hook that crashes the node (the chaos trigger) must prevent
        the batch's stable write entirely."""
        log = grouped_log(ctx, window_ms=1.0)
        log.group_pipeline.on_group_force.append(
            lambda node, size, lsn: log.crash())
        log.append(make_record())
        Process(ctx.engine, log.force())
        ctx.engine.drain(1_000.0)
        assert ctx.meter.count(Primitive.STABLE_STORAGE_WRITE) == 0
        assert len(log.store) == 0

    def test_log_usable_after_crash(self, ctx):
        log = grouped_log(ctx, window_ms=2.0)
        log.append(make_record())
        Process(ctx.engine, log.force())
        ctx.engine.schedule(1.0, log.crash)
        ctx.engine.drain(1_000.0)
        lsn = log.append(make_record())
        run(ctx, log.force(lsn))
        assert log.flushed_lsn == lsn
        assert len(log.store) == 1


class TestSerialLogDevice:
    def test_serial_device_queues_concurrent_forces(self, ctx):
        commit = CommitConfig(serial_log_device=True)
        log = WriteAheadLog(ctx, commit=commit)

        def forcer():
            lsn = log.append(make_record())
            yield from log.force(lsn)

        first = Process(ctx.engine, forcer())
        second = Process(ctx.engine, forcer())
        ctx.engine.run_until(first)
        ctx.engine.run_until(second)
        # FIFO over one device: the second write waits for the first.
        assert ctx.engine.now == pytest.approx(2 * STABLE_WRITE_MS)

    def test_default_device_lets_forces_overlap(self, ctx):
        log = WriteAheadLog(ctx)

        def forcer():
            lsn = log.append(make_record())
            yield from log.force(lsn)

        first = Process(ctx.engine, forcer())
        second = Process(ctx.engine, forcer())
        ctx.engine.run_until(first)
        ctx.engine.run_until(second)
        # The paper's accounting charges each process independently.
        assert ctx.engine.now == pytest.approx(STABLE_WRITE_MS)


class TestCommitConfigValidation:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError):
            CommitConfig(pipeline="turbo")

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            CommitConfig(force_window_ms=-1.0)

    def test_batch_cap_floor(self):
        with pytest.raises(ValueError):
            CommitConfig(force_batch_cap=0)

    def test_grouped_factory(self):
        commit = CommitConfig.grouped(force_window_ms=9.0)
        assert commit.grouped_pipeline
        assert commit.force_window_ms == 9.0
        assert commit.serial_log_device
