"""Tests for the Name Server and its library (Table 3-3)."""

import pytest

from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.errors import LookupFailed
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST, ZERO_CPU
from repro.kernel.node import Node
from repro.nameserver.library import NameServerLibrary
from repro.nameserver.server import NameServer


@pytest.fixture
def world():
    ctx = SimContext(profile=ZERO_COST, cpu_costs=ZERO_CPU)
    network = Network(ctx)
    nodes = {}
    for name in ("a", "b", "c"):
        node = Node(ctx, name)
        CommunicationManager(node, network)
        NameServer(node, network)
        nodes[name] = node
    return ctx, network, nodes


def run(ctx, gen):
    from repro.sim import Process
    return ctx.engine.run_until(Process(ctx.engine, gen))


def test_register_and_local_lookup(world):
    ctx, _, nodes = world
    library = NameServerLibrary(nodes["a"])
    port = nodes["a"].create_port("svc")

    def body():
        yield from library.register("printer", "io", port, object_id=5)
        refs = yield from library.lookup("printer")
        return refs

    refs = run(ctx, body())
    assert len(refs) == 1
    assert refs[0].port is port
    assert refs[0].object_id == 5
    assert refs[0].node_name == "a"


def test_lookup_unknown_name_fails_after_broadcast(world):
    ctx, _, nodes = world
    library = NameServerLibrary(nodes["a"])

    def body():
        yield from library.lookup("ghost", max_wait_ms=100.0)

    with pytest.raises(LookupFailed):
        run(ctx, body())


def test_broadcast_resolves_remote_name(world):
    ctx, _, nodes = world
    remote_library = NameServerLibrary(nodes["b"])
    port = nodes["b"].create_port("svc")
    run(ctx, remote_library.register("mailbox", "queue", port))

    local_library = NameServerLibrary(nodes["a"])
    ref = run(ctx, local_library.lookup_one("mailbox"))
    assert ref.node_name == "b"
    assert ref.port is port


def test_lookup_gathers_multiple_replicas(world):
    """Independent data servers can together implement replicated objects:
    one name maps to several <port, object id> pairs across nodes."""
    ctx, _, nodes = world
    for name in ("a", "b", "c"):
        library = NameServerLibrary(nodes[name])
        port = nodes[name].create_port("rep")
        run(ctx, library.register("replicated", "directory_rep", port))

    library = NameServerLibrary(nodes["a"])
    refs = run(ctx, library.lookup("replicated", desired=3,
                                   max_wait_ms=500.0))
    assert sorted(ref.node_name for ref in refs) == ["a", "b", "c"]


def test_node_filter(world):
    ctx, _, nodes = world
    for name in ("a", "b"):
        library = NameServerLibrary(nodes[name])
        run(ctx, library.register("dup", "t", nodes[name].create_port()))
    library = NameServerLibrary(nodes["a"])
    refs = run(ctx, library.lookup("dup", node_name="a"))
    assert [r.node_name for r in refs] == ["a"]


def test_deregister_withdraws_mapping(world):
    ctx, _, nodes = world
    library = NameServerLibrary(nodes["a"])
    port = nodes["a"].create_port("svc")
    run(ctx, library.register("temp", "t", port))
    run(ctx, library.deregister("temp", port))
    with pytest.raises(LookupFailed):
        run(ctx, library.lookup("temp", max_wait_ms=50.0))


def test_down_node_does_not_answer_broadcast(world):
    ctx, _, nodes = world
    remote_library = NameServerLibrary(nodes["b"])
    run(ctx, remote_library.register("svc-on-b", "t",
                                     nodes["b"].create_port()))
    nodes["b"].crash()
    library = NameServerLibrary(nodes["a"])
    with pytest.raises(LookupFailed):
        run(ctx, library.lookup("svc-on-b", max_wait_ms=100.0))


def test_reference_epoch_stamps_current_incarnation(world):
    ctx, _, nodes = world
    nodes["c"].crash()
    nodes["c"].restart()
    CommunicationManager(nodes["c"], world[1])
    NameServer(nodes["c"], world[1])
    library = NameServerLibrary(nodes["c"])
    run(ctx, library.register("svc", "t", nodes["c"].create_port()))
    ref = run(ctx, library.lookup_one("svc"))
    assert ref.epoch == 1
