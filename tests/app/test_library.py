"""Unit tests for the application library (Table 3-2)."""

import pytest

from repro import TabsCluster, TransactionAborted
from repro.errors import InvalidTransaction
from repro.kernel.costs import Phase
from repro.servers.int_array import IntegerArrayServer
from tests.property.conftest import fast_config


@pytest.fixture
def cluster():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def test_begin_returns_fresh_toplevel_tids(cluster):
    app = cluster.application("n1")

    def body():
        first = yield from app.begin_transaction()
        second = yield from app.begin_transaction()
        return first, second

    first, second = cluster.run_on("n1", body())
    assert first != second
    assert first.is_toplevel and second.is_toplevel


def test_end_of_unknown_transaction_raises(cluster):
    app = cluster.application("n1")
    from repro.txn.ids import TransactionID

    def body():
        yield from app.end_transaction(TransactionID("n1", 424242))

    with pytest.raises(InvalidTransaction):
        cluster.run_on("n1", body())


def test_abort_is_idempotent(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        yield from app.abort_transaction(tid)
        yield from app.abort_transaction(tid)  # second abort: no-op

    cluster.run_on("n1", body())


def test_end_after_abort_reports_not_committed(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        yield from app.abort_transaction(tid, reason="because")
        committed = yield from app.end_transaction(tid)
        return committed

    assert cluster.run_on("n1", body()) is False


def test_run_transaction_commits_and_returns(cluster):
    app = cluster.application("n1")

    def body(tid):
        return "result"
        yield

    assert cluster.run_transaction("n1", body) == "result"


def test_run_transaction_aborts_on_exception(cluster):
    app = cluster.application("n1")
    tm = cluster.node("n1").tm

    def body(tid):
        raise ValueError("user code failed")
        yield

    with pytest.raises(ValueError):
        cluster.run_transaction("n1", body)
    assert tm.aborts >= 1


def test_run_transaction_retries_aborts(cluster):
    app = cluster.application("n1")
    attempts = []

    def body(tid):
        attempts.append(tid)
        if len(attempts) < 3:
            raise TransactionAborted(tid, "simulated conflict")
        return "eventually"
        yield

    result = cluster.run_on(
        "n1", app.run_transaction(body, retries=5))
    assert result == "eventually"
    assert len(attempts) == 3
    assert len(set(attempts)) == 3  # a fresh transaction per attempt


def test_run_transaction_gives_up_after_retries(cluster):
    app = cluster.application("n1")

    def body(tid):
        raise TransactionAborted(tid, "always conflicts")
        yield

    with pytest.raises(TransactionAborted):
        cluster.run_on("n1", app.run_transaction(body, retries=2))


def test_measured_app_flips_meter_phases(cluster):
    app = cluster.application("n1", measured=True)
    observed = []

    def body():
        tid = yield from app.begin_transaction()
        observed.append(cluster.meter.phase)
        ref = yield from app.lookup_one("array")
        yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        yield from app.end_transaction(tid)
        observed.append(cluster.meter.phase)

    cluster.run_on("n1", body())
    assert observed == [Phase.PRE_COMMIT, Phase.PRE_COMMIT]


def test_unmeasured_app_leaves_meter_in_background(cluster):
    app = cluster.application("n1")

    def body():
        tid = yield from app.begin_transaction()
        yield from app.end_transaction(tid)

    cluster.run_on("n1", body())
    assert cluster.meter.phase is Phase.BACKGROUND
