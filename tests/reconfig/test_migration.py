"""Shard migration: the happy path, validation, and crash resume."""

import pytest

from tests.reconfig.conftest import build_reconfig, counter, phases

from repro.errors import TabsError
from repro.reconfig.registry import registry_call
from repro.workloads.debitcredit import DebitCreditWorkload


class TestHappyPath:
    def test_migration_moves_the_shard(self):
        cluster, topology, manager = build_reconfig(seed=61)
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank0")
        manager.join("bank2")

        assert manager.run_migration(keyspace, "bank0", "bank2") is True

        # dest takes the source's position; intent -> extend -> copy
        # passes -> barrier -> commit -> done; extend + shrink epochs
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        assert cluster.placement_epoch == 2
        # "copy" phases only appear for cells written through the
        # replicated write path; a quiet cluster migrates zero chunks
        # and the destination liveness probe stands in for them
        seen = [p for p in phases(manager) if p != "copy"]
        assert seen == ["intent", "extend", "barrier", "commit", "done"]
        assert counter(cluster, "bank0",
                       "reconfig.migrations_committed") == 1

    def test_registry_intent_is_cleared_after_commit(self):
        cluster, topology, manager = build_reconfig(seed=67)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        manager.run_migration(keyspace, "bank0", "bank2")

        app = cluster.application("bank0")
        state = cluster.run_on(
            "bank0", registry_call(app, "bank0", "reconfig_state", {}))
        assert state["seq"] == 1
        assert state["intent"] == 0

    def test_migrated_copy_serves_the_committed_balances(self):
        """Move a shard, then read every account through the new
        placement: the copy must be byte-for-byte current."""
        cluster, topology, manager = build_reconfig(seed=71)
        workload = DebitCreditWorkload(cluster, topology, seed=5)
        workload.schedule_traffic(txns=10, first_at_ms=5.0, spacing_ms=40.0)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        cluster.engine.schedule(
            200.0,
            lambda: manager.spawn_migration(keyspace, "bank0", "bank2"))
        workload.drain()
        workload.crash_and_recover_all()
        report = workload.check_invariants()
        assert report.violations == []
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        outcomes = workload.stats.outcomes()
        assert outcomes.get("committed", 0) > 0


class TestValidation:
    def test_source_must_hold_a_copy(self):
        cluster, topology, manager = build_reconfig(seed=73)
        manager.join("bank2")
        with pytest.raises(TabsError):
            manager.run_migration(topology.account_server(0), "bank2",
                                  "bank1")

    def test_dest_must_not_already_hold_a_copy(self):
        cluster, topology, manager = build_reconfig(seed=79)
        with pytest.raises(TabsError):
            manager.run_migration(topology.account_server(0), "bank0",
                                  "bank1")


class TestCrashResume:
    def crash_at(self, cluster, manager, phase_name):
        """Arm a one-shot originator crash at the next message boundary
        after ``phase_name`` fires (exactly where the chaos controller
        lands its migration faults)."""
        fired = {}

        def hook(phase, info):
            if phase == phase_name and "at" not in fired:
                fired["at"] = cluster.ctx.now
                cluster.engine.schedule(
                    0.0, lambda: cluster.crash_node("bank0"))

        manager.phase_hooks.append(hook)
        return fired

    def test_crash_before_commit_resumes_backward(self):
        cluster, topology, manager = build_reconfig(seed=83)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        self.crash_at(cluster, manager, "extend")
        coordinator = manager.spawn_migration(keyspace, "bank0", "bank2")
        cluster.settle()
        assert coordinator.result is None  # the crash killed it mid-flight

        cluster.restart_node("bank0")
        cluster.settle()
        assert "resumed-back" in phases(manager)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank0")
        assert counter(cluster, "bank0", "reconfig.resumed-back") == 1
        # the orphaned destination copy must not serve reads
        server = cluster.node("bank2").servers.get(keyspace)
        assert server is None or server.catchup_pending is True

    def test_crash_after_commit_resumes_forward(self):
        cluster, topology, manager = build_reconfig(seed=89)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        self.crash_at(cluster, manager, "commit")
        coordinator = manager.spawn_migration(keyspace, "bank0", "bank2")
        cluster.settle()
        assert coordinator.result is None

        cluster.restart_node("bank0")
        cluster.settle()
        assert "resumed-forward" in phases(manager)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        assert counter(cluster, "bank0", "reconfig.resumed-forward") == 1

    def test_resume_is_idempotent_across_repeated_crashes(self):
        cluster, topology, manager = build_reconfig(seed=97)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        self.crash_at(cluster, manager, "extend")
        manager.spawn_migration(keyspace, "bank0", "bank2")
        cluster.settle()
        cluster.restart_node("bank0")
        cluster.settle()
        # a second power-cycle finds a clean registry: no second resume
        cluster.crash_node("bank0")
        cluster.restart_node("bank0")
        cluster.settle()
        assert counter(cluster, "bank0", "reconfig.resumed-back") == 1
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank0")
