"""ReconfigConfig validation and the catch-up timeout knobs the copy
loop inherits."""

import pytest

from repro.core.config import ReconfigConfig, ReplicationConfig, TabsConfig
from repro.replication.catchup import _list_peer, _snapshot_peer


class TestReconfigConfig:
    def test_off_by_default(self):
        assert TabsConfig().reconfig.enabled is False
        assert ReconfigConfig.off().enabled is False

    def test_online_enables_with_overrides(self):
        config = ReconfigConfig.online(copy_max_retries=3)
        assert config.enabled is True
        assert config.copy_max_retries == 3

    def test_negative_retry_backoff_rejected(self):
        with pytest.raises(ValueError):
            ReconfigConfig(copy_retry_ms=-1.0)

    def test_zero_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            ReconfigConfig(copy_max_retries=0)


class SpyApp:
    """Records the timeout each catch-up RPC is issued with."""

    def __init__(self):
        self.calls = []

    def begin_transaction(self):
        yield from ()
        return 1

    def lookup_one(self, name, node_name=""):
        yield from ()
        return (name, node_name)

    def call(self, ref, op, body, tid, timeout_ms=None):
        self.calls.append((op, timeout_ms))
        yield from ()
        if op == "repl_cells":
            return {"offsets": [1, 2]}
        return {"cells": {1: None, 2: None}}

    def end_transaction(self, tid):
        yield from ()
        return True

    def abort_transaction(self, tid, reason=""):
        yield from ()


def drive(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class TestCatchupCallTimeoutThreading:
    """The migration copy loop reuses `_list_peer`/`_snapshot_peer`; a
    peer dying mid-RPC must fail at ``catchup_call_timeout_ms``, not the
    default RPC timeout -- so the knob must actually reach the calls."""

    CONFIG = ReplicationConfig.available_copies(
        2, catchup_call_timeout_ms=123.0)

    def test_listing_rpc_carries_the_catchup_timeout(self):
        app = SpyApp()
        offsets = drive(_list_peer(app, "accounts0", "bank1", self.CONFIG))
        assert offsets == [1, 2]
        assert app.calls == [("repl_cells", 123.0)]

    def test_snapshot_rpc_carries_the_catchup_timeout(self):
        app = SpyApp()
        cells = drive(_snapshot_peer(app, "accounts0", "bank1", [1, 2],
                                     self.CONFIG))
        assert set(cells) == {1, 2}
        assert app.calls == [("repl_read_batch", 123.0)]
        assert self.CONFIG.catchup_call_timeout_ms == 123.0
