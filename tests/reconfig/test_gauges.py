"""Per-shard redundancy gauges must track the placement as it moves."""

from tests.reconfig.conftest import build_reconfig, gauge


class TestGaugesFollowMigration:
    def test_migrated_shard_zeroes_the_source_gauge(self):
        cluster, topology, manager = build_reconfig(seed=23)
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank0")
        assert gauge(cluster, "bank0",
                     f"replication.available_copies[{keyspace}]") == 2

        manager.join("bank2")
        assert manager.run_migration(keyspace, "bank0", "bank2") is True

        # The shard moved away: bank0 must stop reporting a copy count
        # for it, while the new holder reports the full redundancy.
        assert gauge(cluster, "bank0",
                     f"replication.available_copies[{keyspace}]") == 0
        assert gauge(cluster, "bank2",
                     f"replication.available_copies[{keyspace}]") == 2
        assert gauge(cluster, "bank1",
                     f"replication.available_copies[{keyspace}]") == 2

    def test_epoch_gauge_tracks_installs(self):
        cluster, topology, manager = build_reconfig(seed=29)
        keyspace = topology.account_server(1)
        manager.join("bank2")
        manager.run_migration(keyspace, "bank0", "bank2")
        # extend + shrink = two installs
        assert gauge(cluster, "bank2", "reconfig.placement_epoch") == 2
        assert gauge(cluster, "bank0", "reconfig.placement_epoch") == 2
