"""Epoch-versioned placement: successor builders and forward-only installs."""

import pytest

from tests.reconfig.conftest import build_reconfig, gauge

from repro.errors import TabsError
from repro.reconfig import PlacementEpoch
from repro.replication import PlacementMap

MAP = PlacementMap({"a": ("n0", "n1"), "b": ("n1", "n2")})


class TestPlacementEpoch:
    def test_negative_epoch_rejected(self):
        with pytest.raises(TabsError):
            PlacementEpoch(-1, MAP)

    def test_successor_increments_and_rebuilds_the_map(self):
        epoch = PlacementEpoch(3, MAP)
        succ = epoch.successor({"a": ("n0",), "b": ("n1", "n2")})
        assert succ.epoch == 4
        assert succ.replicas("a") == ("n0",)
        # the original is untouched (maps are immutable)
        assert epoch.replicas("a") == ("n0", "n1")

    def test_with_replicas_replaces_one_keyspace(self):
        succ = PlacementEpoch(0, MAP).with_replicas("a", ("n2", "n0"))
        assert succ.epoch == 1
        assert succ.replicas("a") == ("n2", "n0")
        assert succ.replicas("b") == ("n1", "n2")

    def test_with_replicas_unknown_keyspace_rejected(self):
        with pytest.raises(TabsError):
            PlacementEpoch(0, MAP).with_replicas("zz", ("n0",))

    def test_with_replica_added_is_the_extend_step(self):
        succ = PlacementEpoch(0, MAP).with_replica_added("a", "n2")
        assert succ.replicas("a") == ("n0", "n1", "n2")

    def test_with_replica_added_rejects_an_existing_copy(self):
        with pytest.raises(TabsError):
            PlacementEpoch(0, MAP).with_replica_added("a", "n1")

    def test_with_replica_removed_is_the_shrink_step(self):
        succ = PlacementEpoch(0, MAP).with_replica_removed("a", "n0")
        assert succ.replicas("a") == ("n1",)

    def test_with_replica_removed_refuses_the_last_copy(self):
        epoch = PlacementEpoch(0, PlacementMap({"a": ("n0",)}))
        with pytest.raises(TabsError):
            epoch.with_replica_removed("a", "n0")

    def test_with_replica_removed_requires_an_existing_copy(self):
        with pytest.raises(TabsError):
            PlacementEpoch(0, MAP).with_replica_removed("a", "n2")


class TestInstallEpoch:
    def test_install_moves_the_cluster_and_every_node_forward(self):
        cluster, topology, manager = build_reconfig(seed=11)
        keyspace = topology.account_server(0)
        old = cluster.placement.replicas(keyspace)
        manager.install_epoch(
            manager.current_epoch().with_replicas(keyspace, old[::-1]))
        assert cluster.placement_epoch == 1
        assert cluster.placement.replicas(keyspace) == old[::-1]
        for name, tabs_node in cluster.nodes.items():
            assert tabs_node.replication.epoch == 1
            assert gauge(cluster, name, "reconfig.placement_epoch") == 1

    def test_epochs_only_go_forward(self):
        cluster, topology, manager = build_reconfig(seed=13)
        current = manager.current_epoch()
        with pytest.raises(TabsError):
            manager.install_epoch(
                PlacementEpoch(current.epoch, current.placement))

    def test_manager_requires_the_feature_flag(self):
        from tests.reconfig.conftest import WORKLOAD

        from repro.core.cluster import TabsCluster
        from repro.core.config import ReplicationConfig, TabsConfig
        from repro.reconfig import ReconfigManager

        config = TabsConfig(
            seed=7, workload=WORKLOAD,
            replication=ReplicationConfig.available_copies(2))
        cluster = TabsCluster(config)
        cluster.build_workload()
        with pytest.raises(TabsError):
            ReconfigManager(cluster, "bank0")
