"""PlacementMap edge cases the reconfiguration builders lean on."""

import pytest

from repro.errors import TabsError
from repro.replication import PlacementMap


class TestPlacementMapEdges:
    def test_empty_map_rejected(self):
        with pytest.raises(TabsError):
            PlacementMap({})

    def test_assignments_copy_is_isolated(self):
        """Successor epochs mutate ``assignments()``; the copy must not
        leak back into the immutable original."""
        placement = PlacementMap({"a": ("n0", "n1")})
        assignments = placement.assignments()
        assignments["a"] = ("n2",)
        assert placement.replicas("a") == ("n0", "n1")

    def test_nodes_is_the_sorted_union(self):
        placement = PlacementMap({"a": ("n2", "n0"), "b": ("n1", "n2")})
        assert placement.nodes() == ["n0", "n1", "n2"]

    def test_keyspaces_on_unknown_node_is_empty(self):
        placement = PlacementMap({"a": ("n0",)})
        assert placement.keyspaces_on("n9") == []

    def test_replica_tuple_order_is_preserved(self):
        placement = PlacementMap({"a": ["n2", "n0", "n1"]})
        assert placement.replicas("a") == ("n2", "n0", "n1")


class TestRingEdges:
    def test_anchor_index_wraps_around_the_ring(self):
        placement = PlacementMap.ring(["a"], ["n0", "n1", "n2"], 2,
                                      anchors={"a": 7})
        assert placement.replicas("a") == ("n1", "n2")

    def test_single_node_ring_clamps_to_one_copy(self):
        placement = PlacementMap.ring(["a", "b"], ["n0"], 3)
        assert placement.replicas("a") == ("n0",)
        assert placement.replicas("b") == ("n0",)
