"""random_plan's reconfig episodes: seed compatibility and shape."""

from repro.chaos import MigrationFault, random_plan
from repro.replication import PlacementMap

NODES = ["n0", "n1", "n2"]
PLACEMENT = PlacementMap.ring(["a", "b"], NODES, 2)

PHASES = {"intent", "extend", "copy", "barrier", "commit"}
ROLES = {"originator", "source", "dest"}


class TestRandomPlanReconfigWeight:
    def test_weight_zero_reproduces_historical_seeds(self):
        """The knob defaults off and, even passed explicitly as 0,
        draws nothing from the RNG."""
        for seed in (1, 7, 99, 2306):
            old = random_plan(seed, NODES, 30_000.0, episodes=6)
            new = random_plan(seed, NODES, 30_000.0, episodes=6,
                              reconfig_weight=0, placement=PLACEMENT)
            assert old == new

    def test_reconfig_episodes_target_migration_phases(self):
        plan = random_plan(5, NODES, 30_000.0, episodes=12,
                           crash_weight=0, partition_weight=0,
                           link_weight=0, disk_weight=0,
                           reconfig_weight=1, placement=PLACEMENT)
        assert len(plan) == 12
        for action in plan:
            assert isinstance(action, MigrationFault)
            assert action.phase in PHASES
            assert action.role in ROLES
            assert action.kind in ("crash", "partition")
            if action.kind == "crash":
                assert action.restart_after_ms is not None
            else:
                assert action.heal_after_ms is not None

    def test_reconfig_plans_are_reproducible(self):
        kwargs = dict(episodes=8, reconfig_weight=3, placement=PLACEMENT)
        assert random_plan(11, NODES, 20_000.0, **kwargs) \
            == random_plan(11, NODES, 20_000.0, **kwargs)

    def test_mixed_weights_still_bound_every_episode(self):
        """Every reconfig episode carries a repair: a restart or a
        heal, so the post-run audits always see a repairable cluster."""
        plan = random_plan(23, NODES, 40_000.0, episodes=20,
                           reconfig_weight=4, placement=PLACEMENT)
        for action in plan:
            if isinstance(action, MigrationFault):
                assert (action.restart_after_ms is not None
                        or action.heal_after_ms is not None)
