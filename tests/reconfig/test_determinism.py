"""Same seeds, same reconfiguration: trace-for-trace reproducibility."""

from tests.reconfig.conftest import build_reconfig

from repro.chaos import ChaosController, FaultPlan, MigrationFault
from repro.workloads.debitcredit import DebitCreditWorkload


def run_once(seed: int = 7):
    cluster, topology, manager = build_reconfig(seed=seed)
    fault = MigrationFault(phase="copy", role="dest", kind="crash",
                           restart_after_ms=4_000.0)
    controller = ChaosController(cluster, FaultPlan.of(fault), seed=3)
    controller.install()
    manager.join("bank2")
    workload = DebitCreditWorkload(cluster, topology, controller=controller,
                                   seed=11)
    workload.schedule_traffic(txns=12, first_at_ms=5.0, spacing_ms=60.0)
    keyspace = topology.account_server(1)
    cluster.engine.schedule(
        400.0,
        lambda: manager.spawn_migration(keyspace, "bank0", "bank2"))
    workload.finale()
    return (tuple(manager.events), tuple(controller.trace),
            tuple(sorted(workload.stats.outcomes().items())))


class TestReconfigDeterminism:
    def test_identical_seeds_replay_identically(self):
        first = run_once(seed=7)
        second = run_once(seed=7)
        assert first == second

    def test_different_seeds_diverge(self):
        """Sanity check that the equality above is not vacuous."""
        assert run_once(seed=7)[0] != run_once(seed=19)[0]
