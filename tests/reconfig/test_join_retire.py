"""Live membership: nodes join a running cluster and retire from it."""

import pytest

from tests.reconfig.conftest import build_reconfig, commit_one, counter

from repro.errors import TabsError


class TestJoin:
    def test_joined_node_is_live_and_discoverable(self):
        cluster, topology, manager = build_reconfig(seed=31)
        tabs_node = manager.join("bank2")
        assert tabs_node.node.alive
        assert "bank2" in cluster.nodes
        assert counter(cluster, "bank0", "reconfig.nodes_joined") == 1
        # hosts nothing until a shard is migrated to it
        assert cluster.placement.keyspaces_on("bank2") == []

    def test_joined_node_accepts_a_migration(self):
        cluster, topology, manager = build_reconfig(seed=37)
        manager.join("bank2")
        keyspace = topology.account_server(0)
        assert manager.run_migration(keyspace, "bank0", "bank2") is True
        assert "bank2" in cluster.placement.replicas(keyspace)


class TestRetire:
    def test_retire_drains_every_shard_and_powers_off(self):
        cluster, topology, manager = build_reconfig(seed=41)
        manager.join("bank2")
        hosted = cluster.placement.keyspaces_on("bank1")
        assert hosted  # rf=2 over two nodes: bank1 holds a copy of all
        manager.retire("bank1")
        assert cluster.placement.keyspaces_on("bank1") == []
        assert cluster.node("bank1").retired is True
        assert not cluster.node("bank1").node.alive
        assert counter(cluster, "bank0", "reconfig.nodes_retired") == 1
        assert counter(cluster, "bank0",
                       "reconfig.migrations_committed") == len(hosted)
        # the survivors keep committing DebitCredit traffic
        assert commit_one(cluster, topology, "bank0")

    def test_retiring_the_originator_is_refused(self):
        cluster, topology, manager = build_reconfig(seed=43)
        with pytest.raises(TabsError):
            manager.retire("bank0")

    def test_retire_without_a_destination_leaves_the_node_in_service(self):
        """Two nodes, rf=2: there is nowhere to drain bank1 to."""
        cluster, topology, manager = build_reconfig(seed=47)
        with pytest.raises(TabsError):
            manager.retire("bank1")
        assert cluster.node("bank1").retired is False
        assert cluster.node("bank1").node.alive

    def test_retired_node_cannot_be_retired_again(self):
        cluster, topology, manager = build_reconfig(seed=53)
        manager.join("bank2")
        manager.retire("bank1")
        with pytest.raises(TabsError):
            manager.retire("bank1")

    def test_migrating_to_a_retired_node_is_refused(self):
        cluster, topology, manager = build_reconfig(seed=59)
        manager.join("bank2")
        manager.retire("bank1")
        keyspace = topology.account_server(0)
        with pytest.raises(TabsError):
            manager.run_migration(keyspace, "bank0", "bank1")
