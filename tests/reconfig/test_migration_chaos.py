"""Crashes and partitions at migration phase boundaries.

Every scenario runs live DebitCredit traffic, injects one
:class:`MigrationFault` through the chaos controller, finishes with the
workload's crash-recover-all finale, and audits conservation plus the
single-copy-serializability invariants.  The migration itself must end
in a *decided* state either way: committed with the shard re-homed, or
rolled back with the old placement re-installed as a fresh epoch.
"""

from tests.reconfig.conftest import (build_reconfig, commit_one, counter,
                                     phases)

from repro.chaos import ChaosController, FaultPlan, MigrationFault
from repro.workloads.debitcredit import DebitCreditWorkload


def run_scenario(fault: MigrationFault, seed: int = 7, txns: int = 24,
                 traffic: bool = True):
    """Traffic + one armed migration fault + finale; returns the lot."""
    cluster, topology, manager = build_reconfig(seed=seed)
    plan = FaultPlan.of(fault)
    controller = ChaosController(cluster, plan, seed=3)
    controller.install()
    manager.join("bank2")
    workload = DebitCreditWorkload(cluster, topology, controller=controller,
                                   seed=11)
    keyspace = topology.account_server(1)
    if traffic:
        workload.schedule_traffic(txns=txns, first_at_ms=5.0,
                                  spacing_ms=60.0)
    holder = {}
    cluster.engine.schedule(
        400.0, lambda: holder.update(
            c=manager.spawn_migration(keyspace, "bank0", "bank2")))
    quiet = workload.finale()
    report = workload.check_invariants(quiet=quiet)
    return cluster, topology, manager, workload, report, holder["c"]


class TestOriginatorCrash:
    def test_crash_mid_copy_resumes_on_recovery(self):
        """The coordinator dies with its node; the durable intent
        settles the migration at the originator's next recovery."""
        cluster, topology, manager, workload, report, coordinator = \
            run_scenario(MigrationFault(phase="copy", role="originator",
                                        kind="crash",
                                        restart_after_ms=4_000.0))
        assert coordinator.result is None
        resumed = [p for p in phases(manager) if p.startswith("resumed")]
        assert len(resumed) == 1
        assert report.violations == []
        # whatever direction it resumed, the shard is fully placed and
        # the cluster still commits fresh traffic
        keyspace = topology.account_server(1)
        assert len(cluster.placement.replicas(keyspace)) == 2
        assert commit_one(cluster, topology, "bank1", branch=1)


class TestDestinationCrash:
    def test_crash_before_copy_without_restart_rolls_back(self):
        """A destination that dies right after extend and never returns
        exhausts the copy retry budget; the old placement comes back as
        a fresh epoch and the audits hold."""
        cluster, topology, manager, workload, report, coordinator = \
            run_scenario(MigrationFault(phase="extend", role="dest",
                                        kind="crash"))
        assert coordinator.result is False
        assert "rolled-back" in phases(manager)
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank0")
        assert counter(cluster, "bank0",
                       "reconfig.migrations_rolled_back") == 1
        assert report.violations == []
        assert commit_one(cluster, topology, "bank1", branch=1)

    def test_crash_mid_copy_with_restart_still_commits(self):
        """The copy retries through the outage; the restarted
        destination catches up behind its read barrier and the
        migration lands."""
        cluster, topology, manager, workload, report, coordinator = \
            run_scenario(MigrationFault(phase="copy", role="dest",
                                        kind="crash",
                                        restart_after_ms=4_000.0))
        assert coordinator.result is True
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        assert report.violations == []

    def test_crash_after_commit_is_an_ordinary_replica_failure(self):
        """Past the commit point the shard is re-homed; the dead copy
        recovers like any crashed replica (barrier + catch-up)."""
        cluster, topology, manager, workload, report, coordinator = \
            run_scenario(MigrationFault(phase="commit", role="dest",
                                        kind="crash",
                                        restart_after_ms=4_000.0))
        assert coordinator.result is True
        assert "done" in phases(manager)
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        assert report.violations == []


class TestSourcePartition:
    def test_partitioned_source_commits_after_heal(self):
        """The copy's retry loop outlives a partition window.  No
        traffic rides through the partition: available-copies is
        documented as unsound under symmetric partitions (split-brain
        writers), migration or not -- here we isolate the migration's
        own behavior.  The fault arms at "extend" because a quiet
        cluster copies zero chunks and never emits a "copy" phase."""
        cluster, topology, manager, workload, report, coordinator = \
            run_scenario(MigrationFault(phase="extend", role="source",
                                        kind="partition",
                                        heal_after_ms=4_000.0),
                         traffic=False)
        assert coordinator.result is True
        keyspace = topology.account_server(1)
        assert cluster.placement.replicas(keyspace) == ("bank1", "bank2")
        assert report.violations == []
        assert commit_one(cluster, topology, "bank1", branch=1)
