"""Shared builder for a reconfigurable replicated DebitCredit cluster."""

from repro.core.cluster import TabsCluster
from repro.core.config import (ReconfigConfig, ReplicationConfig, TabsConfig,
                               WorkloadConfig)
from repro.reconfig import ReconfigManager

#: two branches on two nodes, rf=2, tiny partitions: every key-space has
#: a copy on each node and the audits stay cheap
WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=10,
                          tellers_per_branch=2)


def build_reconfig(seed: int = 7, originator: str = "bank0",
                   replication: ReplicationConfig | None = None,
                   reconfig: ReconfigConfig | None = None,
                   workload: WorkloadConfig | None = None):
    """A started rf=2 DebitCredit cluster with online reconfiguration;
    returns ``(cluster, topology, manager)``."""
    config = TabsConfig(
        seed=seed,
        workload=workload or WORKLOAD,
        replication=replication or ReplicationConfig.available_copies(2),
        reconfig=reconfig or ReconfigConfig.online())
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    manager = ReconfigManager(cluster, originator)
    cluster.settle()
    return cluster, topology, manager


def counter(cluster, node, name):
    return cluster.metrics.counter(node, name).value


def gauge(cluster, node, name):
    return cluster.metrics.gauge(node, name).value


def phases(manager):
    """The migration phase names in event order."""
    return [event[1] for event in manager.events]


def commit_one(cluster, topology, home_node: str, branch: int = 0) -> bool:
    """One fresh replicated DebitCredit transaction; True iff it commits."""
    from repro.workloads.debitcredit import (TxnSpec,
                                             replicated_debitcredit_txn)

    rapp = cluster.replicated_application(home_node)
    spec = TxnSpec(home_branch=branch, teller=1, account_branch=branch,
                   account=2, amount=7)

    def body(tid):
        yield from replicated_debitcredit_txn(rapp, topology, spec, tid)

    try:
        cluster.run_on(home_node, rapp.run_transaction(body, retries=2))
    except Exception:
        return False
    return True
