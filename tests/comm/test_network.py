"""Tests for the network fabric, sessions, and Communication Manager."""

import pytest

from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.comm.sessions import Session, SessionTable
from repro.errors import CommunicationError, SessionBroken
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST, Primitive, ZERO_CPU
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.txn.ids import TransactionID


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST, cpu_costs=ZERO_CPU)


def make_pair(ctx, loss=0.0):
    network = Network(ctx, datagram_loss_rate=loss)
    nodes, managers = {}, {}
    for name in ("a", "b"):
        node = Node(ctx, name)
        manager = CommunicationManager(node, network)
        nodes[name], managers[name] = node, manager
    return network, nodes, managers


class TestNetwork:
    def test_registry(self, ctx):
        network, nodes, managers = make_pair(ctx)
        assert network.node("a") is nodes["a"]
        assert network.manager("b") is managers["b"]
        assert sorted(network.node_names()) == ["a", "b"]
        with pytest.raises(CommunicationError):
            network.node("ghost")

    def test_liveness_tracks_crash(self, ctx):
        network, nodes, _ = make_pair(ctx)
        assert network.is_up("a")
        nodes["a"].crash()
        assert not network.is_up("a")

    def test_bad_loss_rate_rejected(self, ctx):
        with pytest.raises(CommunicationError):
            Network(ctx, datagram_loss_rate=1.5)

    def test_datagram_to_down_node_counts_undeliverable_not_lost(self, ctx):
        """A datagram that reaches a crashed node is *undeliverable*: the
        wire worked, the endpoint did not.  It must not pollute the
        injected-loss statistics."""
        network, nodes, _ = make_pair(ctx)
        nodes["b"].crash()
        network.deliver_datagram("b", Message(op="x"), latency_ms=1.0)
        ctx.engine.run()
        assert network.datagrams_undeliverable == 1
        assert network.datagrams_lost == 0

    def test_crash_in_flight_counts_undeliverable(self, ctx):
        """The target goes down while the datagram is on the wire."""
        network, nodes, _ = make_pair(ctx)
        network.deliver_datagram("b", Message(op="x"), latency_ms=5.0)
        ctx.engine.schedule(1.0, nodes["b"].crash)
        ctx.engine.run()
        assert network.datagrams_undeliverable == 1
        assert network.datagrams_lost == 0

    def test_datagram_loss_injection(self, ctx):
        network, _, managers = make_pair(ctx)
        network.datagram_loss_rate = 1.0  # always lose
        network.datagram_loss_rate = 0.999999
        for _ in range(20):
            network.deliver_datagram("b", Message(op="x"), latency_ms=0.0)
        ctx.engine.run()
        assert network.datagrams_lost == 20
        assert network.datagrams_undeliverable == 0


class TestPartitions:
    def make_triple(self, ctx):
        network = Network(ctx)
        nodes, managers = {}, {}
        for name in ("a", "b", "c"):
            node = Node(ctx, name)
            managers[name] = CommunicationManager(node, network)
            nodes[name] = node
        return network, nodes, managers

    def test_partition_blocks_cross_group_datagrams(self, ctx):
        network, _, _ = self.make_triple(ctx)
        network.partition([["a"], ["b", "c"]])
        network.deliver_datagram("b", Message(op="x", sender_node="a"), 1.0)
        network.deliver_datagram("c", Message(op="x", sender_node="b"), 1.0)
        ctx.engine.run()
        assert network.datagrams_blocked == 1  # a->b blocked, b->c fine

    def test_unlisted_nodes_get_singleton_groups(self, ctx):
        network, _, _ = self.make_triple(ctx)
        network.partition([["a", "b"]])  # c isolated implicitly
        assert network.reachable("a", "b")
        assert not network.reachable("a", "c")
        assert not network.reachable("c", "b")

    def test_heal_restores_reachability(self, ctx):
        network, _, _ = self.make_triple(ctx)
        network.partition([["a"], ["b"]])
        assert not network.reachable("a", "b")
        network.heal()
        assert network.reachable("a", "b")
        network.deliver_datagram("b", Message(op="x", sender_node="a"), 1.0)
        ctx.engine.run()
        assert network.datagrams_blocked == 0

    def test_node_in_two_groups_rejected(self, ctx):
        network, _, _ = self.make_triple(ctx)
        with pytest.raises(CommunicationError):
            network.partition([["a", "b"], ["b", "c"]])

    def test_session_breaks_across_partition(self, ctx):
        network, _, _ = self.make_triple(ctx)
        session = Session(network, "a", "b")
        network.partition([["a"], ["b"]])
        with pytest.raises(SessionBroken):
            session.check()
        # The break is permanent: at-most-once state cannot be trusted.
        network.heal()
        assert session.broken


class TestLinkFaults:
    def test_link_loss_window(self, ctx):
        network, _, _ = make_pair(ctx)
        network.set_link_fault("a", "b", loss=1.0, until=10.0)
        for _ in range(5):
            network.deliver_datagram("b", Message(op="x", sender_node="a"),
                                     1.0)
        ctx.engine.run()
        assert network.datagrams_lost == 5
        # Window over: the fault expires lazily at the next send.
        ctx.engine.schedule(20.0, lambda: None)
        ctx.engine.run()
        network.deliver_datagram("b", Message(op="x", sender_node="a"), 1.0)
        ctx.engine.run()
        assert network.datagrams_lost == 5

    def test_link_duplication_delivers_twice(self, ctx):
        network, nodes, _ = make_pair(ctx)
        target_port = nodes["b"].create_port("svc")
        nodes["b"].register_service("transaction_manager", target_port)
        network.set_link_fault("a", "b", duplicate=1.0)
        network.deliver_datagram(
            "b", Message(op="tm.x", body={}, sender_node="a"), 1.0)
        ctx.engine.run()
        assert network.datagrams_duplicated == 1
        assert len(target_port._queue) + target_port.dropped >= 0  # delivered
        # Both copies were handed to the manager (spawned inbound procs).
        assert network.datagrams_sent == 1

    def test_link_reordering_delays_datagram(self, ctx):
        """A reordered datagram arrives after one sent later."""
        network, nodes, _ = make_pair(ctx)
        arrivals = []
        network.add_trace_hook(
            lambda t, ev, src, dst, op: arrivals.append((t, ev, op))
            if ev == "recv" else None)
        network.set_link_fault("a", "b", reorder=1.0, reorder_delay_ms=40.0)
        network.deliver_datagram("b", Message(op="first", sender_node="a"),
                                 1.0)
        network.clear_link_fault("a", "b")
        network.deliver_datagram("b", Message(op="second", sender_node="a"),
                                 1.0)
        ctx.engine.run()
        assert network.datagrams_reordered == 1
        assert [op for _, _, op in arrivals] == ["second", "first"]

    def test_bad_link_rate_rejected(self, ctx):
        network, _, _ = make_pair(ctx)
        with pytest.raises(CommunicationError):
            network.set_link_fault("a", "b", loss=1.5)


class TestSessions:
    def test_session_to_down_node_fails(self, ctx):
        network, nodes, _ = make_pair(ctx)
        nodes["b"].crash()
        with pytest.raises(SessionBroken):
            Session(network, "a", "b")

    def test_session_breaks_on_peer_crash(self, ctx):
        network, nodes, _ = make_pair(ctx)
        session = Session(network, "a", "b")
        assert session.usable
        nodes["b"].crash()
        with pytest.raises(SessionBroken):
            session.check()
        assert session.broken

    def test_session_stays_broken_after_peer_restart(self, ctx):
        """At-most-once needs the peer's session state, which a restart
        destroyed: the old session is permanently dead."""
        network, nodes, _ = make_pair(ctx)
        session = Session(network, "a", "b")
        nodes["b"].crash()
        nodes["b"].restart()
        assert network.is_up("b")
        with pytest.raises(SessionBroken):
            session.check()

    def test_session_table_reestablishes(self, ctx):
        network, nodes, _ = make_pair(ctx)
        table = SessionTable(network, "a")
        first = table.session_to("b")
        nodes["b"].crash()
        nodes["b"].restart()
        second = table.session_to("b")
        assert second is not first
        assert second.usable

    def test_sequence_numbers_advance(self, ctx):
        network, _, _ = make_pair(ctx)
        session = Session(network, "a", "b")
        assert session.next_sequence() == 1
        assert session.next_sequence() == 2


class TestSpanningTree:
    def tid(self, node="a"):
        return TransactionID(node, 1)

    def test_outbound_recording(self, ctx):
        _, _, managers = make_pair(ctx)
        tid = self.tid()
        managers["a"].record_outbound(tid, "b")
        record = managers["a"].spanning_record(tid)
        assert record.children == {"b"}
        assert record.parent == ""

    def test_inbound_sets_parent_once(self, ctx):
        _, _, managers = make_pair(ctx)
        tid = self.tid("a")
        managers["b"].record_inbound(tid, "a")
        managers["b"].record_inbound(tid, "a")
        record = managers["b"].spanning_record(tid)
        assert record.parent == "a"

    def test_birth_node_never_gets_a_parent(self, ctx):
        """A callback to the transaction's birth node must not make the
        caller its parent (the birth node is the root)."""
        _, _, managers = make_pair(ctx)
        tid = self.tid("a")
        managers["a"].record_outbound(tid, "b")
        managers["a"].record_inbound(tid, "b")  # b calls back into a
        assert managers["a"].spanning_record(tid).parent == ""

    def test_subtransactions_share_the_family_tree(self, ctx):
        _, _, managers = make_pair(ctx)
        parent = self.tid("a")
        child = parent.child(1)
        managers["a"].record_outbound(parent, "b")
        managers["a"].record_outbound(child, "b")
        record = managers["a"].spanning_record(parent)
        assert record.children == {"b"}

    def test_child_epoch_recorded_for_crash_detection(self, ctx):
        network, nodes, managers = make_pair(ctx)
        tid = self.tid()
        managers["a"].record_outbound(tid, "b")
        assert managers["a"].spanning_record(tid).child_epochs == {"b": 0}

    def test_datagram_roundtrip_via_managers(self, ctx):
        """cm.send_datagram delivers to the remote node's named service."""
        network, nodes, managers = make_pair(ctx)
        target_port = nodes["b"].create_port("svc")
        nodes["b"].register_service("transaction_manager", target_port)
        payload = Message(op="tm.hello", body={"x": 1})
        managers["a"].port.send(Message(
            op="cm.send_datagram", body={"target": "b",
                                         "payload": payload}))
        message = ctx.engine.run_until(target_port.receive())
        assert message.op == "tm.hello"
        assert message.sender_node == "a"
        assert ctx.meter.count(Primitive.DATAGRAM) == 1
