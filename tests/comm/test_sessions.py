"""SessionTable semantics: epoch pinning, permanent breaks, on-demand
re-establishment, and per-network session numbering."""

import pytest

from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.comm.sessions import Session, SessionTable
from repro.errors import SessionBroken
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST, ZERO_CPU
from repro.kernel.node import Node


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST, cpu_costs=ZERO_CPU)


def make_world(ctx, names=("a", "b", "c")):
    network = Network(ctx)
    nodes = {}
    for name in names:
        node = Node(ctx, name)
        CommunicationManager(node, network)
        nodes[name] = node
    return network, nodes


class TestEpochPinning:
    def test_session_pins_the_remote_epoch(self, ctx):
        network, _ = make_world(ctx)
        session = Session(network, "a", "b")
        assert session.remote_epoch == 0

    def test_restart_breaks_the_session_permanently(self, ctx):
        """A restarted peer lost its at-most-once state: the old session is
        dead forever, even though the node is reachable again."""
        network, nodes = make_world(ctx)
        table = SessionTable(network, "a")
        session = table.session_to("b")
        nodes["b"].crash()
        nodes["b"].restart()
        assert not session.usable
        with pytest.raises(SessionBroken):
            session.check()
        assert session.broken
        # ... and stays broken even after further epochs settle
        with pytest.raises(SessionBroken):
            session.next_sequence()


class TestReestablishment:
    def test_table_replaces_a_dead_session_on_demand(self, ctx):
        network, nodes = make_world(ctx)
        table = SessionTable(network, "a")
        first = table.session_to("b")
        nodes["b"].crash()
        nodes["b"].restart()
        second = table.session_to("b")
        assert second is not first
        assert second.usable
        assert second.remote_epoch == 1
        assert second.session_id != first.session_id

    def test_table_reestablishes_after_partition_heals(self, ctx):
        network, _ = make_world(ctx)
        table = SessionTable(network, "a")
        first = table.session_to("b")
        network.partition([["a"], ["b", "c"]])
        with pytest.raises(SessionBroken):
            first.check()
        network.heal()
        second = table.session_to("b")
        assert second is not first and second.usable

    def test_break_to_is_proactive(self, ctx):
        """The failure detector breaks sessions the moment it declares a
        peer dead, instead of waiting for the next use to discover it."""
        network, _ = make_world(ctx)
        table = SessionTable(network, "a")
        first = table.session_to("b")
        table.break_to("b")
        assert first.broken
        assert table.session_to("b") is not first

    def test_break_to_unknown_peer_is_a_no_op(self, ctx):
        network, _ = make_world(ctx)
        SessionTable(network, "a").break_to("b")  # nothing cached: fine


class TestActivePeers:
    def test_active_peers_track_crash_and_heal(self, ctx):
        network, nodes = make_world(ctx)
        table = SessionTable(network, "a")
        table.session_to("b")
        table.session_to("c")
        assert sorted(table.active_peers()) == ["b", "c"]
        nodes["b"].crash()
        assert table.active_peers() == ["c"]
        nodes["b"].restart()
        # the old session does not resurrect ...
        assert table.active_peers() == ["c"]
        # ... but asking again re-establishes
        table.session_to("b")
        assert sorted(table.active_peers()) == ["b", "c"]

    def test_clear_forgets_everything(self, ctx):
        network, _ = make_world(ctx)
        table = SessionTable(network, "a")
        table.session_to("b")
        table.clear()
        assert table.active_peers() == []


class TestSessionNumbering:
    def test_ids_advance_within_one_network(self, ctx):
        network, _ = make_world(ctx)
        first = Session(network, "a", "b")
        second = Session(network, "a", "c")
        assert second.session_id == first.session_id + 1

    def test_ids_are_per_network_not_per_process(self, ctx):
        """Regression: session ids used to come from a module-global
        counter, so a second cluster in the same process numbered its
        sessions differently -- breaking cross-run determinism."""
        network_one, _ = make_world(ctx)
        first = Session(network_one, "a", "b")
        network_two, _ = make_world(ctx)
        again = Session(network_two, "a", "b")
        assert again.session_id == first.session_id == 1
