"""Unit tests for the heartbeat failure detector (repro.comm.failures)."""

import pytest

from repro.comm.failures import FailureDetector
from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST, Primitive, ZERO_CPU
from repro.kernel.node import Node

INTERVAL = 250.0
SUSPICION = 1500.0
#: worst-case detection latency: a full unheard window plus the tick that
#: notices it, plus one tick of scheduling granularity
DETECTION_BOUND = SUSPICION + 2 * INTERVAL


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST, cpu_costs=ZERO_CPU)


def attach_detector(manager, events):
    name = manager.node.name
    events.setdefault(name, [])
    manager.failure_detector = FailureDetector(
        manager, probe_interval_ms=INTERVAL,
        suspicion_timeout_ms=SUSPICION,
        observers=[lambda t, local, event, peer:
                   events[local].append((t, event, peer))])
    return manager.failure_detector


def make_world(ctx, names=("a", "b")):
    network = Network(ctx)
    nodes, detectors, events = {}, {}, {}
    for name in names:
        node = Node(ctx, name)
        manager = CommunicationManager(node, network)
        detectors[name] = attach_detector(manager, events)
        nodes[name] = node
    return network, nodes, detectors, events


class TestHealthy:
    def test_live_peers_are_never_suspected(self, ctx):
        _, _, detectors, events = make_world(ctx)
        ctx.engine.run(until=10 * SUSPICION)
        assert detectors["a"].suspects() == []
        assert detectors["b"].suspects() == []
        assert detectors["a"].failures_detected == 0
        assert events["a"] == [] and events["b"] == []

    def test_peer_epochs_learned_from_probes(self, ctx):
        _, _, detectors, _ = make_world(ctx)
        ctx.engine.run(until=2 * INTERVAL)
        assert detectors["a"].peers["b"].epoch == 0
        assert detectors["b"].peers["a"].epoch == 0

    def test_probes_are_uncharged_daemons(self, ctx):
        """Heartbeats must neither pollute the paper's primitive counts
        nor keep the engine from quiescing."""
        _, _, _, _ = make_world(ctx)
        ctx.engine.run(until=5_000.0)
        assert ctx.meter.count(Primitive.DATAGRAM) == 0
        assert ctx.engine.pending_count() == 0
        ctx.engine.run()  # returns immediately: only daemon ticks remain
        assert ctx.engine.now == 5_000.0


class TestCrashDetection:
    def test_crashed_peer_suspected_within_bound(self, ctx):
        _, nodes, detectors, events = make_world(ctx)
        ctx.engine.schedule(1_000.0, nodes["b"].crash)
        ctx.engine.run(until=1_000.0 + DETECTION_BOUND)
        assert detectors["a"].suspects() == ["b"]
        assert detectors["a"].failures_detected == 1
        assert ctx.meter.counter("failures_detected") == 1
        (when, event, peer), = events["a"]
        assert event == "suspect" and peer == "b"
        assert when <= 1_000.0 + DETECTION_BOUND

    def test_dead_peer_is_suspected_only_once(self, ctx):
        _, nodes, detectors, _ = make_world(ctx)
        ctx.engine.schedule(1_000.0, nodes["b"].crash)
        ctx.engine.run(until=10_000.0)
        assert detectors["a"].failures_detected == 1

    def test_suspicion_breaks_the_session_proactively(self, ctx):
        network, nodes, _, _ = make_world(ctx)
        session = network.manager("a").sessions.session_to("b")
        ctx.engine.schedule(500.0, nodes["b"].crash)
        ctx.engine.run(until=500.0 + DETECTION_BOUND)
        assert session.broken

    def test_fast_restart_observed_via_epoch_bump(self, ctx):
        """An outage shorter than the suspicion timeout is still detected:
        the survivor sees the peer's epoch jump."""
        network, nodes, _, events = make_world(ctx)

        def revive():
            nodes["b"].restart()
            attach_detector(CommunicationManager(nodes["b"], network),
                            events)

        ctx.engine.schedule(600.0, nodes["b"].crash)
        ctx.engine.schedule(900.0, revive)  # 300 ms outage << suspicion
        ctx.engine.run(until=3_000.0)
        kinds = [event for _, event, _ in events["a"]]
        assert "restart-observed" in kinds
        assert "suspect" not in kinds


class TestFalseSuspicion:
    def test_healed_partition_counts_a_false_suspicion(self, ctx):
        network, _, detectors, events = make_world(ctx)
        ctx.engine.schedule(100.0, lambda: network.partition([["a"], ["b"]]))
        ctx.engine.schedule(2_100.0, network.heal)
        ctx.engine.run(until=4_000.0)
        assert detectors["a"].false_suspicions == 1
        assert detectors["a"].suspects() == []
        assert ctx.meter.counter("false_suspicions") >= 1
        kinds = [event for _, event, _ in events["a"]]
        assert kinds.count("suspect") == 1
        assert kinds.count("recovered") == 1

    def test_short_partition_causes_no_suspicion(self, ctx):
        """A blip shorter than the suspicion timeout passes unnoticed."""
        network, _, detectors, events = make_world(ctx)
        ctx.engine.schedule(100.0, lambda: network.partition([["a"], ["b"]]))
        ctx.engine.schedule(1_000.0, network.heal)  # 900 ms < 1500 ms
        ctx.engine.run(until=4_000.0)
        assert detectors["a"].failures_detected == 0
        assert events["a"] == []


class TestStaleness:
    def test_replaced_detector_falls_silent(self, ctx):
        """After a rebuild registers a fresh CM, the old detector's pending
        tick must not double-probe."""
        network, nodes, detectors, events = make_world(ctx)
        old = detectors["a"]
        fresh = attach_detector(CommunicationManager(nodes["a"], network),
                                events)
        ctx.engine.run(until=2_000.0)
        assert old.peers == {}  # never ticked after being superseded
        assert fresh.peers["b"].epoch == 0

    def test_stopped_detector_neither_probes_nor_answers(self, ctx):
        _, _, detectors, _ = make_world(ctx)
        detectors["b"].stop()
        ctx.engine.run(until=DETECTION_BOUND + INTERVAL)
        assert detectors["b"].peers == {}
        # b went mute, so a (correctly, from its vantage) suspects it.
        assert detectors["a"].suspects() == ["b"]
