"""The seeded torture scenarios.

Each test pins one hazardous window of the commit/recovery protocol --
crash mid-prepare, crash mid-commit, the in-doubt window, partitions,
datagram duplication/reordering/loss, disk latency spikes -- and asserts
the full audit suite afterwards: conservation of account totals,
cross-node atomicity, no lost commits, disk-vs-log agreement, and clean
lock/port drainage.  Every scenario is reproducible from its ``(plan,
seed)`` pair.
"""

from repro.chaos import (
    CrashAt,
    CrashWhenLogged,
    DiskSlowdown,
    FaultPlan,
    LinkFaultWindow,
    PartitionAt,
    random_plan,
)
from tests.chaos.conftest import run_scenario


def test_participant_crash_mid_prepare():
    """n1 dies the instant it has durably voted (PREPARED logged) but has
    not yet learned the outcome: the classic in-doubt participant."""
    plan = FaultPlan.of(CrashWhenLogged(
        crash_node="n1",
        seen=(("n1", "prepared"),),
        not_seen=(("n1", "committed"), ("n1", "aborted")),
        restart_after_ms=700.0))
    run = run_scenario(plan, seed=101)
    assert run.events("trigger"), "the prepare window was never hit"
    run.assert_clean()


def test_coordinator_crash_mid_commit():
    """n0 dies right after forcing its COMMITTED record, before driving
    phase two: participants block in doubt until n0 recovers and answers
    their outcome queries."""
    plan = FaultPlan.of(CrashWhenLogged(
        crash_node="n0",
        seen=(("n0", "committed"),),
        restart_after_ms=900.0))
    run = run_scenario(plan, seed=202)
    assert run.events("trigger"), "the commit window was never hit"
    run.assert_clean()


def test_participant_crash_in_doubt_window():
    """n1 prepared, the coordinator committed, n1 has not heard: n1's
    recovery must re-acquire the write locks and resolve to commit."""
    plan = FaultPlan.of(CrashWhenLogged(
        crash_node="n1",
        seen=(("n1", "prepared"), ("n0", "committed")),
        not_seen=(("n1", "committed"),),
        restart_after_ms=600.0,
        disarm_after_ms=5_000.0))
    run = run_scenario(plan, seed=303)
    run.assert_clean()


def test_partition_then_heal():
    """A partition splits the coordinator from a participant mid-run."""
    plan = FaultPlan.of(PartitionAt(
        400.0, (("n0",), ("n1", "n2")), heal_after_ms=900.0))
    run = run_scenario(plan, seed=404)
    assert run.events("partition") and run.events("heal")
    run.assert_clean()


def test_repeated_partitions():
    """The network flaps: two partition episodes with different cuts."""
    plan = FaultPlan.of(
        PartitionAt(300.0, (("n0", "n1"), ("n2",)), heal_after_ms=500.0),
        PartitionAt(1_500.0, (("n0", "n2"), ("n1",)), heal_after_ms=600.0))
    run = run_scenario(plan, seed=505)
    assert len(run.events("partition")) == 2
    run.assert_clean()


def test_duplicated_datagrams():
    """Heavy datagram duplication: at-most-once delivery must hold."""
    plan = FaultPlan.of(
        LinkFaultWindow(100.0, 4_000.0, "n0", "n1", duplicate=0.8),
        LinkFaultWindow(100.0, 4_000.0, "n0", "n2", duplicate=0.8))
    run = run_scenario(plan, seed=606)
    assert run.cluster.network.datagrams_duplicated > 0
    run.assert_clean()


def test_reordered_datagrams():
    """Datagram reordering between every pair of nodes."""
    plan = FaultPlan.of(
        LinkFaultWindow(100.0, 4_000.0, "n0", "n1", reorder=0.7,
                        reorder_delay_ms=80.0),
        LinkFaultWindow(100.0, 4_000.0, "n1", "n2", reorder=0.7,
                        reorder_delay_ms=80.0))
    run = run_scenario(plan, seed=707)
    assert run.cluster.network.datagrams_reordered > 0
    run.assert_clean()


def test_lossy_link():
    """A badly lossy link: retries and time-outs must mask the loss."""
    plan = FaultPlan.of(
        LinkFaultWindow(100.0, 3_500.0, "n0", "n2", loss=0.4))
    run = run_scenario(plan, seed=808)
    run.assert_clean()


def test_disk_latency_spike():
    """One node's disk slows 6x mid-run, stretching the force-write
    window that crashes love to hit."""
    plan = FaultPlan.of(
        DiskSlowdown(200.0, 2_500.0, "n1", factor=6.0),
        CrashAt(1_200.0, "n2", restart_after_ms=600.0))
    run = run_scenario(plan, seed=909)
    assert run.events("disk-latency")
    run.assert_clean()


def test_double_crash_same_node():
    """n1 crashes, recovers, and crashes again while recovering traffic
    is still replaying -- recovery must be idempotent."""
    plan = FaultPlan.of(
        CrashAt(400.0, "n1", restart_after_ms=500.0),
        CrashAt(1_600.0, "n1", restart_after_ms=500.0))
    run = run_scenario(plan, seed=111)
    assert run.cluster.node("n1").node.crashes >= 2
    run.assert_clean()


def test_staggered_crash_of_every_node():
    """All three nodes power-fail at staggered instants."""
    plan = FaultPlan.of(
        CrashAt(500.0, "n0", restart_after_ms=800.0),
        CrashAt(900.0, "n1", restart_after_ms=800.0),
        CrashAt(1_300.0, "n2", restart_after_ms=800.0))
    run = run_scenario(plan, seed=222)
    run.assert_clean()


def test_queue_survives_crash_of_its_node():
    """Enqueues race a crash of the queue's home node: committed items
    drain exactly once, aborted enqueues leave only gaps."""
    plan = FaultPlan.of(
        CrashAt(600.0, "n0", restart_after_ms=700.0))
    run = run_scenario(plan, seed=333, with_queue=True, transfers=6,
                       enqueues=8)
    assert any(r.kind == "enqueue" for r in run.workload.stats.records)
    run.assert_clean()


def test_combined_mayhem():
    """Crash + partition + duplication + disk spike, overlapping."""
    plan = FaultPlan.of(
        DiskSlowdown(100.0, 2_000.0, "n0", factor=4.0),
        CrashWhenLogged(crash_node="n1", seen=(("n1", "prepared"),),
                        restart_after_ms=600.0),
        PartitionAt(1_200.0, (("n0", "n1"), ("n2",)), heal_after_ms=700.0),
        LinkFaultWindow(2_200.0, 3_800.0, "n0", "n2", loss=0.3,
                        duplicate=0.3))
    run = run_scenario(plan, seed=444)
    run.assert_clean()


def test_random_plan_smoke():
    """A seeded random fault schedule (the soak's little sibling)."""
    plan = random_plan(seed=31, nodes=["n0", "n1", "n2"],
                       duration_ms=4_000.0, episodes=3)
    assert len(plan) > 0
    run = run_scenario(plan, seed=31)
    run.assert_clean()
