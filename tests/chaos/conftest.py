"""Shared driver for the chaos torture scenarios.

Every scenario follows the same shape: build a cluster, install a fault
plan, fire a seeded randomized workload into it, repair + quiesce, then
audit the transaction guarantees.  The scenarios differ only in the plan
and the seed -- which is the point: the invariants must hold under *any*
fault schedule.
"""

from dataclasses import dataclass

from repro.chaos import ChaosController, ChaosWorkload, FaultPlan
from repro.chaos.workload import build_cluster


@dataclass
class ScenarioRun:
    cluster: object
    controller: ChaosController
    workload: ChaosWorkload
    report: object
    quiet: bool

    def assert_clean(self) -> None:
        __tracebackhide__ = True
        assert self.quiet, "simulation failed to quiesce after repair"
        assert self.report.ok, "invariant violations:\n" + "\n".join(
            f"  {violation}" for violation in self.report.violations)

    def trace_kinds(self) -> set:
        return {entry[1] for entry in self.controller.trace}

    def events(self, kind: str) -> list:
        return [entry for entry in self.controller.trace
                if entry[1] == kind]


def run_scenario(plan: FaultPlan, seed: int, node_count: int = 3,
                 with_queue: bool = False, transfers: int = 12,
                 enqueues: int = 0, run_ms: float = 6_000.0,
                 trace_network: bool = False,
                 spacing_ms: float = 120.0,
                 archive_dump_at_ms: float | None = None,
                 instrument=None,
                 **config_overrides) -> ScenarioRun:
    """Build, torture, repair, audit.  Deterministic in ``(plan, seed)``.

    ``archive_dump_at_ms`` schedules an archive dump on every node (the
    base image corruption scenarios repair media from); it is opt-in so
    historical plans replay byte-identically.  ``instrument`` (if given)
    receives the freshly built cluster before any traffic -- the
    profiled-goldens test uses it to flip on observability that must not
    perturb the run.  ``config_overrides`` are forwarded to
    :class:`TabsConfig` (e.g. ``commit=CommitConfig.grouped()`` to
    torture the group-commit pipeline).
    """
    cluster = build_cluster(node_count, with_queue=with_queue, seed=seed,
                            **config_overrides)
    if instrument is not None:
        instrument(cluster)
    controller = ChaosController(cluster, plan, seed=seed,
                                 trace_network=trace_network)
    workload = ChaosWorkload(cluster, controller, seed=seed)
    workload.setup()
    controller.install()
    if archive_dump_at_ms is not None:
        workload.schedule_archive_dumps(archive_dump_at_ms)
    workload.schedule_traffic(transfers=transfers, enqueues=enqueues,
                              spacing_ms=spacing_ms)
    workload.run(run_ms)
    quiet = workload.finale()
    report = workload.check_invariants(quiet=quiet)
    return ScenarioRun(cluster, controller, workload, report, quiet)
