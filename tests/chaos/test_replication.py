"""Chaos scenarios for the replicated DebitCredit workload.

The available-copies promise: a replica crash degrades service (writes
fan out to fewer copies, reads fail over) but never stops it, and the
replicated cluster stays indistinguishable from a single-copy one --
money conservation *and* replica convergence are audited after repair.
"""

import pytest

from repro.chaos import (
    ChaosController,
    CrashAt,
    CrashWhenLogged,
    FaultPlan,
    crash_one_replica_per_shard,
    random_plan,
)
from repro.core.cluster import TabsCluster
from repro.core.config import ReplicationConfig, TabsConfig, WorkloadConfig
from repro.workloads import DebitCreditWorkload

#: two branches on two nodes, rf=2: every key-space has a copy on both
#: nodes, so writes fan out and 2PC crosses nodes on every transaction
WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=200,
                          tellers_per_branch=4, locality=0.3)


def run_replicated_chaos(plan: FaultPlan, seed: int, txns: int = 24,
                         run_ms: float = 24_000.0):
    config = TabsConfig(seed=seed, workload=WORKLOAD,
                        replication=ReplicationConfig.available_copies())
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    controller = ChaosController(cluster, plan, seed=seed)
    controller.install()
    driver = DebitCreditWorkload(cluster, topology, controller=controller,
                                 seed=seed)
    driver.schedule_traffic(txns=txns, spacing_ms=400.0)
    driver.run(run_ms)
    quiet = driver.finale()
    report = driver.check_invariants(quiet=quiet)
    return driver, controller, report


MID_2PC_PLAN = FaultPlan.of(
    CrashWhenLogged(
        crash_node="bank1",
        # bank1 durably prepared as a replica participant but its own
        # commit record not yet logged: the write already fanned out to
        # it, so commit-time state is exactly the in-flight-2PC window.
        seen=(("bank1", "prepared"),),
        not_seen=(("bank1", "committed"),),
        restart_after_ms=5_000.0))


@pytest.fixture(scope="module")
def mid_2pc_run():
    # Traffic extends well past the restart: the commits that prove
    # liveness come once the in-doubt locks resolve (prepared_inquiry_ms)
    # and the crashed replica is back in the write set.
    return run_replicated_chaos(MID_2PC_PLAN, seed=2306, txns=48,
                                run_ms=28_000.0)


def test_replica_crash_mid_2pc_keeps_invariants(mid_2pc_run):
    driver, controller, report = mid_2pc_run
    assert [e for e in controller.trace if e[1] == "crash"], \
        "the mid-2PC trigger never fired"
    assert report.ok, report.violations


def test_replica_crash_mid_2pc_still_commits(mid_2pc_run):
    driver, _, _ = mid_2pc_run
    assert driver.stats.outcomes().get("committed", 0) > 0


def test_recovered_replica_caught_up(mid_2pc_run):
    driver, _, _ = mid_2pc_run
    metrics = driver.cluster.metrics
    assert metrics.counter("bank1", "replica.catchup_pages").value > 0


#: rolling restarts: each shard loses one replica in turn, never both
#: copies at once (stagger > restart window), so commits never stop
ROLLING_PLAN = FaultPlan.of(
    CrashAt(2_000.0, "bank1", restart_after_ms=5_000.0),
    CrashAt(11_000.0, "bank0", restart_after_ms=5_000.0))


def test_one_replica_per_shard_rolling_crash_never_outages():
    driver, controller, report = run_replicated_chaos(ROLLING_PLAN,
                                                      seed=515, txns=40)
    assert {e[1] for e in controller.trace} >= {"crash", "restart"}
    assert report.ok, report.violations
    outcomes = driver.stats.outcomes()
    assert outcomes.get("committed", 0) > 0, outcomes
    # Degraded service showed up as routing, not refusal.
    metrics = driver.cluster.metrics
    degraded = sum(metrics.counter(node, "replication.write_all_degraded")
                   .value for node in ("bank0", "bank1"))
    assert degraded > 0


def test_crash_one_replica_per_shard_helper_builds_the_rolling_plan():
    """The helper derives the same schedule from the placement map."""
    config = TabsConfig(seed=1, workload=WORKLOAD,
                        replication=ReplicationConfig.available_copies())
    cluster = TabsCluster(config)
    cluster.build_workload()
    actions = crash_one_replica_per_shard(cluster.placement, at_ms=2_000.0,
                                          restart_after_ms=5_000.0,
                                          stagger_ms=9_000.0)
    assert [(a.node, a.at_ms) for a in actions] == \
        [("bank0", 2_000.0), ("bank1", 11_000.0)]


MID_CATCHUP_PLAN = FaultPlan.of(
    # First crash heals at 7s; the second hits moments after the
    # restart, while the catch-up merge (and its read barrier) is live.
    CrashAt(2_000.0, "bank1", restart_after_ms=5_000.0),
    CrashAt(7_250.0, "bank1", restart_after_ms=5_000.0))


def test_replica_killed_mid_catchup_recovers_cleanly():
    driver, controller, report = run_replicated_chaos(MID_CATCHUP_PLAN,
                                                      seed=99, txns=32)
    crashes = [e for e in controller.trace if e[1] == "crash"]
    assert len(crashes) >= 2
    assert report.ok, report.violations
    assert driver.stats.outcomes().get("committed", 0) > 0


def test_replicated_chaos_runs_are_deterministic():
    """Same (seed, plan) -> identical outcomes, counters, and clock."""
    config = TabsConfig(seed=77, workload=WORKLOAD,
                        replication=ReplicationConfig.available_copies())
    probe = TabsCluster(config)
    probe.build_workload()
    plan = random_plan(77, ["bank0", "bank1"], 18_000.0, episodes=3,
                       crash_weight=1, partition_weight=0, link_weight=0,
                       disk_weight=0, replication_weight=3,
                       placement=probe.placement)

    def fingerprint():
        driver, _, report = run_replicated_chaos(plan, seed=77, txns=20,
                                                 run_ms=20_000.0)
        counters = sorted((node, name, counter.value) for (node, name),
                          counter in driver.cluster.metrics.counters()
                          .items())
        return (driver.stats.outcomes(), report.ok,
                driver.cluster.engine.now, counters)

    first = fingerprint()
    second = fingerprint()
    assert first == second
    assert first[1], "replicated chaos run failed its audits"
