"""Failure detection, graceful degradation, and self-healing acceptance.

The robustness acceptance scenarios: a partition that isolates a
participant must abort every spanning transaction family and release its
locks within the suspicion bound (no waiting for vote/ack timeouts); pure
message-mangling fault windows must never cause a false suspicion; and a
crashed node must self-recover on power-on with no controller-driven
recovery call.
"""

from repro import TabsCluster, TabsConfig
from repro.chaos import CrashAt, FaultPlan, LinkFaultWindow
from repro.servers.int_array import IntegerArrayServer
from repro.txn.status import TxnPhase
from tests.chaos.conftest import run_scenario


def make_cluster(nodes=2):
    cluster = TabsCluster(TabsConfig())
    for index in range(nodes):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"arr{index}"))
    cluster.start()
    return cluster


def read_cell(cluster, node, array, cell):
    app = cluster.application(node)

    def body(tid):
        ref = yield from app.lookup_one(array)
        result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return result["value"]

    return cluster.run_transaction(node, body)


def test_partition_aborts_spanning_family_within_suspicion_bound():
    """An ACTIVE transaction spans n0 -> n1 and holds write locks on both
    when a partition isolates n1.  Without detection the family would hold
    its locks until the client (or a 60 s vote timeout) intervened; with
    it, both sides abort within the suspicion bound and the locks free."""
    cluster = make_cluster(2)
    config = cluster.config
    suspect_times = []
    cluster.node("n0").fd_observers.append(
        lambda t, local, event, peer:
        suspect_times.append(t) if event == "suspect" else None)
    app = cluster.application("n0")

    def body():
        tid = yield from app.begin_transaction()
        local = yield from app.lookup_one("arr0")
        remote = yield from app.lookup_one("arr1")
        yield from app.call(local, "set_cell", {"cell": 1, "value": 8}, tid)
        yield from app.call(remote, "set_cell", {"cell": 1, "value": 9}, tid)
        return tid  # deliberately left ACTIVE, locks held on both nodes

    tid = cluster.run_on("n0", body())
    cut_at = cluster.engine.now
    cluster.partition(("n0",), ("n1",))
    bound = (config.suspicion_timeout_ms + 2 * config.probe_interval_ms)
    # Run the clock exactly to the detection bound (plus abort-processing
    # slack): everything asserted below therefore happened *within* it --
    # nowhere near the 60 s vote timeout or the 10 s lock timeout.
    cluster.engine.run(until=cut_at + bound + 1_000.0)

    # Detection happened within the bound, on the coordinator's side.
    assert suspect_times and suspect_times[0] <= cut_at + bound
    state = cluster.node("n0").tm._states[tid]
    assert state.phase is TxnPhase.ABORTED
    assert cluster.meter.counter("aborts_on_failure") >= 1
    assert cluster.meter.counter("failures_detected") >= 1

    # Locks on *both* sides are free: after healing, a conflicting writer
    # takes the same cells immediately instead of waiting out a 10 s lock
    # timeout.
    cluster.heal_partition()
    started = cluster.engine.now

    def conflicting(tid):
        local = yield from app.lookup_one("arr0")
        remote = yield from app.lookup_one("arr1")
        yield from app.call(local, "set_cell", {"cell": 1, "value": 3}, tid)
        yield from app.call(remote, "set_cell", {"cell": 1, "value": 4},
                            tid)

    cluster.run_transaction("n0", conflicting)
    assert cluster.engine.now - started < config.lock_timeout_ms
    cluster.settle()
    # The aborted family's writes never became visible.
    assert read_cell(cluster, "n0", "arr0", 1) == 3
    assert read_cell(cluster, "n0", "arr1", 1) == 4


def test_no_false_suspicions_under_message_mangling():
    """Loss, duplication, and reordering windows mangle the workload's
    traffic but must never fool the detector: probes ride beneath the
    injected faults and the suspicion timeout outlives every window."""
    plan = FaultPlan.of(
        LinkFaultWindow(100.0, 1_000.0, "n0", "n1", loss=0.5,
                        duplicate=0.5),
        LinkFaultWindow(1_200.0, 2_100.0, "n1", "n2", reorder=0.8,
                        reorder_delay_ms=60.0),
        LinkFaultWindow(2_300.0, 3_200.0, "n0", "n2", loss=0.3,
                        duplicate=0.4, reorder=0.3, reorder_delay_ms=40.0))
    run = run_scenario(plan, seed=1212)
    suspicions = [entry for entry in run.events("fd")
                  if entry[3] == "suspect"]
    assert suspicions == []
    assert run.cluster.meter.counter("failures_detected") == 0
    assert run.cluster.meter.counter("false_suspicions") == 0
    run.assert_clean()


def test_crashed_node_self_recovers_unattended():
    """The plan only powers the node back on; the RecoverySupervisor --
    not the chaos controller -- drives the rebuild and crash recovery."""
    plan = FaultPlan.of(CrashAt(500.0, "n1", restart_after_ms=600.0))
    run = run_scenario(plan, seed=1313)
    assert run.cluster.meter.counter("self_recoveries") >= 1
    # The 600 ms outage is shorter than the suspicion timeout, so peers
    # learn of the crash from the epoch bump, not from silence.
    restarts = [entry for entry in run.events("fd")
                if entry[3] == "restart-observed"]
    assert restarts
    run.assert_clean()


def test_bare_restart_self_heals_without_any_driver():
    """node.restart() alone -- no controller, no cluster.restart_node() --
    must bring a crashed node all the way back through crash recovery."""
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def write(tid):
        ref = yield from app.lookup_one("arr1")
        yield from app.call(ref, "set_cell", {"cell": 2, "value": 5}, tid)

    cluster.run_transaction("n0", write)
    tabs_node = cluster.node("n1")
    boot_recovery = tabs_node.last_recovery
    tabs_node.crash()
    tabs_node.node.restart()  # just the power switch
    cluster.settle(extra_ms=2_000.0)
    assert tabs_node.node.alive
    assert tabs_node.last_recovery is not boot_recovery
    assert cluster.meter.counter("self_recoveries") == 1
    # ... and the node serves committed state again.
    assert read_cell(cluster, "n0", "arr1", 2) == 5
