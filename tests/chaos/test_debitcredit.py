"""Chaos scenarios for the DebitCredit workload.

The banking invariants must survive the workload's own worst case: the
node holding a hot branch row dying in the middle of two-phase commit.
Money conservation (three redundant ledgers plus the history journal)
is audited after repair, exactly as in the fault-free property suite --
a lost or duplicated flow anywhere in crash recovery, presumed abort,
or lock release shows up as diverging tier totals.
"""

import pytest

from repro.chaos import ChaosController, CrashAt, CrashWhenLogged, FaultPlan
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig, WorkloadConfig
from repro.workloads import DebitCreditWorkload, debitcredit_txn
from repro.workloads.debitcredit import TxnSpec

#: two branches on two nodes, account traffic frequently remote so 2PC
#: crosses nodes; small partitions keep the audits cheap
WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=200,
                          tellers_per_branch=4, locality=0.3)


def run_debitcredit_chaos(plan: FaultPlan, seed: int, txns: int = 16,
                          run_ms: float = 20_000.0):
    config = TabsConfig(seed=seed, workload=WORKLOAD)
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    controller = ChaosController(cluster, plan, seed=seed)
    controller.install()
    driver = DebitCreditWorkload(cluster, topology, controller=controller,
                                 seed=seed)
    driver.schedule_traffic(txns=txns, spacing_ms=400.0)
    driver.run(run_ms)
    quiet = driver.finale()
    report = driver.check_invariants(quiet=quiet)
    return driver, controller, report


def commit_one_more(driver, home_branch: int = 0) -> bool:
    """One fresh DebitCredit transaction through the (restarted) node."""
    spec = TxnSpec(home_branch=home_branch, teller=1,
                   account_branch=home_branch, account=1, amount=5)
    node = driver.topology.node_name(home_branch)
    app = driver.cluster.application(node)

    def txn():
        tid = yield from app.begin_transaction()
        yield from debitcredit_txn(app, driver.topology, spec, tid)
        return (yield from app.end_transaction(tid))

    committed = driver.cluster.run_on(node, txn())
    if committed:
        driver.stats.records.append(
            type(driver.stats.records[0])(len(driver.stats.records), spec,
                                          outcome="committed"))
    return committed


MID_PREPARE_PLAN = FaultPlan.of(
    CrashWhenLogged(
        crash_node="bank0",
        # bank0 durably prepared (it is a 2PC participant; purely local
        # commits never log a prepare) but the coordinator has not
        # committed: the canonical in-flight-2PC window.
        seen=(("bank0", "prepared"),),
        not_seen=(("bank1", "committed"),),
        restart_after_ms=4_000.0))  # > detector suspicion + probes (~2s)


@pytest.fixture(scope="module")
def mid_prepare_run():
    return run_debitcredit_chaos(MID_PREPARE_PLAN, seed=2306)


def test_hot_branch_crash_mid_prepare_conserves_money(mid_prepare_run):
    driver, controller, report = mid_prepare_run
    crashes = [e for e in controller.trace if e[1] == "crash"]
    assert crashes, "the mid-prepare trigger never fired"
    assert report.ok, report.violations


def test_presumed_abort_resolves_the_orphaned_prepare(mid_prepare_run):
    """The surviving coordinator detects the participant's death and
    aborts the in-flight transaction rather than blocking on it."""
    driver, controller, report = mid_prepare_run
    meter = driver.cluster.meter
    assert meter.counter("failures_detected") > 0
    assert meter.counter("aborts_on_failure") > 0
    outcomes = driver.stats.outcomes()
    assert outcomes.get("aborted", 0) + outcomes.get("unknown", 0) > 0


def test_restarted_hot_branch_serves_traffic(mid_prepare_run):
    driver, _, _ = mid_prepare_run
    assert driver.cluster.node("bank0").node.alive
    assert commit_one_more(driver, home_branch=0)
    # The fresh flow lands in the ledgers too: re-audit conservation.
    assert driver.check_conservation() == []


ACCOUNT_CRASH_PLAN = FaultPlan.of(
    CrashAt(1_500.0, "bank1", restart_after_ms=4_000.0))


def test_account_node_crash_mid_run_conserves_money():
    """Kill the node holding remote accounts mid-traffic: every remote
    transaction caught in 2PC must resolve one way, never half."""
    driver, controller, report = run_debitcredit_chaos(
        ACCOUNT_CRASH_PLAN, seed=515)
    assert {e[1] for e in controller.trace} >= {"crash", "restart"}
    assert report.ok, report.violations
    outcomes = driver.stats.outcomes()
    assert outcomes.get("committed", 0) > 0, outcomes


DOUBLE_CRASH_PLAN = FaultPlan.of(
    CrashAt(1_200.0, "bank0", restart_after_ms=4_000.0),
    CrashAt(8_000.0, "bank1", restart_after_ms=4_000.0))


def test_both_banks_crash_in_turn_conserves_money():
    driver, _, report = run_debitcredit_chaos(DOUBLE_CRASH_PLAN, seed=99,
                                              run_ms=24_000.0)
    assert report.ok, report.violations
