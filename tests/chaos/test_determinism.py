"""Determinism regression: a chaos run is a pure function of its seeds.

The whole point of simulation testing is replayability -- a failure seed
can be re-run under a debugger and behaves identically.  These tests
assert it end to end: same ``(seed, plan)`` must reproduce the *entire*
event trace (every datagram send/receive/loss, every crash, restart,
trigger, and transaction outcome) and the same final simulated clock;
a different seed must diverge.
"""

from repro.chaos import CrashAt, FaultPlan, LinkFaultWindow, PartitionAt
from tests.chaos.conftest import run_scenario

PLAN = FaultPlan.of(
    CrashAt(350.0, "n1", restart_after_ms=450.0),
    PartitionAt(1_000.0, (("n0",), ("n1", "n2")), heal_after_ms=500.0),
    LinkFaultWindow(1_800.0, 2_600.0, "n0", "n2", loss=0.3, duplicate=0.2,
                    reorder=0.2))


def execute(seed: int):
    run = run_scenario(PLAN, seed=seed, transfers=10, run_ms=4_000.0,
                       trace_network=True)
    return run, run.controller.trace, run.cluster.engine.now


def test_same_seed_reproduces_run_exactly():
    run_a, trace_a, now_a = execute(seed=2026)
    run_b, trace_b, now_b = execute(seed=2026)
    assert len(trace_a) > 50, "trace suspiciously empty"
    assert trace_a == trace_b
    assert now_a == now_b
    outcomes_a = [(r.index, r.outcome) for r in run_a.workload.stats.records]
    outcomes_b = [(r.index, r.outcome) for r in run_b.workload.stats.records]
    assert outcomes_a == outcomes_b


def test_different_seed_diverges():
    _, trace_a, _ = execute(seed=2026)
    _, trace_b, _ = execute(seed=2027)
    assert trace_a != trace_b
