"""Determinism regression: a chaos run is a pure function of its seeds.

The whole point of simulation testing is replayability -- a failure seed
can be re-run under a debugger and behaves identically.  These tests
assert it end to end: same ``(seed, plan)`` must reproduce the *entire*
event trace (every datagram send/receive/loss, every crash, restart,
trigger, and transaction outcome) and the same final simulated clock;
a different seed must diverge.
"""

import hashlib
import json

from repro.chaos import (
    BitRotAt,
    CrashAt,
    FaultPlan,
    LinkFaultWindow,
    LogSectorRotAt,
    PartitionAt,
    TornWriteAt,
    random_plan,
)
from tests.chaos.conftest import run_scenario

PLAN = FaultPlan.of(
    CrashAt(350.0, "n1", restart_after_ms=450.0),
    PartitionAt(1_000.0, (("n0",), ("n1", "n2")), heal_after_ms=500.0),
    LinkFaultWindow(1_800.0, 2_600.0, "n0", "n2", loss=0.3, duplicate=0.2,
                    reorder=0.2))

CORRUPTION_PLAN = FaultPlan.of(
    TornWriteAt(900.0, "n1", restart_after_ms=500.0),
    LogSectorRotAt(1_600.0, "n0"),
    BitRotAt(2_100.0, "n2", salt=11),
    CrashAt(2_700.0, "n0", restart_after_ms=400.0))


def execute(seed: int):
    run = run_scenario(PLAN, seed=seed, transfers=10, run_ms=4_000.0,
                       trace_network=True)
    return run, run.controller.trace, run.cluster.engine.now


def test_same_seed_reproduces_run_exactly():
    run_a, trace_a, now_a = execute(seed=2026)
    run_b, trace_b, now_b = execute(seed=2026)
    assert len(trace_a) > 50, "trace suspiciously empty"
    assert trace_a == trace_b
    assert now_a == now_b
    outcomes_a = [(r.index, r.outcome) for r in run_a.workload.stats.records]
    outcomes_b = [(r.index, r.outcome) for r in run_b.workload.stats.records]
    assert outcomes_a == outcomes_b


# Digests of the canonical (PLAN, seed=2026) run, captured before the
# commit-pipeline refactor landed.  The default ``pipeline="paper"``
# configuration must keep reproducing them byte for byte: the pluggable
# pipeline is opt-in, and every historical chaos seed replays unchanged.
GOLDEN_TRACE_SHA = \
    "4c3f21a68d959efe7accdb784dd6f445e16f6753d6804ef9de83b5f84e081050"
GOLDEN_METRICS_SHA = \
    "47928850e2812f64fae5f7fe6c984c7375b1efb99d6887c4e42a4a19b3d36843"
GOLDEN_FINAL_NOW = 125577.71966982371


def test_paper_pipeline_matches_prerefactor_goldens():
    """The paper pipeline is byte-identical to the pre-refactor code.

    If this fails, a change altered default behaviour -- either gate it
    behind :class:`~repro.core.config.CommitConfig` or (for a deliberate
    semantic change) recapture the digests and say so in the commit.
    """
    from repro.obs import metrics_json

    run, trace, now = execute(seed=2026)
    trace_sha = hashlib.sha256(repr(trace).encode()).hexdigest()
    metrics_sha = hashlib.sha256(json.dumps(
        metrics_json(run.cluster.metrics),
        sort_keys=True).encode()).hexdigest()
    assert now == GOLDEN_FINAL_NOW
    assert trace_sha == GOLDEN_TRACE_SHA
    assert metrics_sha == GOLDEN_METRICS_SHA


def test_profiled_run_matches_goldens_byte_for_byte():
    """The wall-clock profiler's zero-feedback invariant, end to end.

    Running the canonical chaos scenario with ``enable_profiling()`` on
    must reproduce the *same* golden digests as the unprofiled run: the
    profiler reads the wall clock but feeds nothing back into simulated
    state, so the event trace, the metrics dump, and the final clock are
    untouched down to the byte.
    """
    from repro.obs import metrics_json

    run = run_scenario(PLAN, seed=2026, transfers=10, run_ms=4_000.0,
                       trace_network=True,
                       instrument=lambda cluster:
                       cluster.enable_profiling())
    trace_sha = hashlib.sha256(
        repr(run.controller.trace).encode()).hexdigest()
    metrics_sha = hashlib.sha256(json.dumps(
        metrics_json(run.cluster.metrics),
        sort_keys=True).encode()).hexdigest()
    assert run.cluster.engine.now == GOLDEN_FINAL_NOW
    assert trace_sha == GOLDEN_TRACE_SHA
    assert metrics_sha == GOLDEN_METRICS_SHA
    # ... and the profiler did actually observe the run.  (It attaches
    # after build_cluster's startup events, so steps <= lifetime total.)
    profiler = run.cluster.ctx.profiler
    assert 0 < profiler.steps <= run.cluster.engine.events_executed
    assert profiler.handlers, "profiler attributed no handler categories"


def test_heap_queue_fallback_matches_goldens_byte_for_byte():
    """The pluggable event queue changes nothing observable.

    The calendar queue is the default; this pins the ``heap`` fallback to
    the *same* golden digests, proving the two queues pop in identical
    ``(time, seq)`` order over a full chaos scenario -- crashes, restarts,
    partitions, daemons, and all.
    """
    from repro.obs import metrics_json
    from repro.sim import EngineConfig

    run = run_scenario(PLAN, seed=2026, transfers=10, run_ms=4_000.0,
                       trace_network=True, engine=EngineConfig.heap())
    trace_sha = hashlib.sha256(
        repr(run.controller.trace).encode()).hexdigest()
    metrics_sha = hashlib.sha256(json.dumps(
        metrics_json(run.cluster.metrics),
        sort_keys=True).encode()).hexdigest()
    assert run.cluster.engine.now == GOLDEN_FINAL_NOW
    assert trace_sha == GOLDEN_TRACE_SHA
    assert metrics_sha == GOLDEN_METRICS_SHA


def test_different_seed_diverges():
    _, trace_a, _ = execute(seed=2026)
    _, trace_b, _ = execute(seed=2027)
    assert trace_a != trace_b


def execute_corruption(seed: int):
    run = run_scenario(CORRUPTION_PLAN, seed=seed, transfers=10,
                       run_ms=4_500.0, trace_network=True,
                       archive_dump_at_ms=300.0)
    return run, run.controller.trace, run.cluster.engine.now


def test_corruption_faults_are_seed_deterministic():
    """Checksum detections, duplex repairs, salvages, and page repairs
    must replay exactly: the corruption fault surface (including the
    controller's RNG picks of target pages and log sectors) is part of
    the deterministic event trace."""
    run_a, trace_a, now_a = execute_corruption(seed=3131)
    run_b, trace_b, now_b = execute_corruption(seed=3131)
    assert trace_a == trace_b
    assert now_a == now_b
    assert {"torn-write", "archive-dump"} <= run_a.trace_kinds()
    from repro.obs import metrics_json

    assert metrics_json(run_a.cluster.metrics) == \
        metrics_json(run_b.cluster.metrics)


def test_corruption_weight_zero_leaves_random_plans_unchanged():
    """``corruption_weight=0`` must draw nothing from the plan RNG, so
    every historical ``(seed, plan)`` pair replays byte-identically."""
    nodes = ["n0", "n1", "n2"]
    for seed in range(40, 52):
        baseline = random_plan(seed=seed, nodes=nodes,
                               duration_ms=8_000.0, episodes=5)
        explicit = random_plan(seed=seed, nodes=nodes,
                               duration_ms=8_000.0, episodes=5,
                               corruption_weight=0)
        assert baseline == explicit


def execute_debitcredit(seed: int):
    """A fault-free DebitCredit run; returns its observable fingerprint.

    The workload threads one seed through spec draws, spawn jitter, and
    the cluster RNG, so the fingerprint (every outcome, the full metrics
    dump, the final clock) must be a pure function of ``seed``.
    """
    from repro.core.cluster import TabsCluster
    from repro.core.config import TabsConfig, WorkloadConfig
    from repro.obs import metrics_json
    from repro.workloads import DebitCreditWorkload

    config = TabsConfig(seed=seed, workload=WorkloadConfig(
        branches=2, accounts_per_branch=300, tellers_per_branch=4,
        locality=0.7))
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    driver = DebitCreditWorkload(cluster, topology, seed=seed)
    driver.schedule_traffic(txns=10)
    driver.run(60_000.0)
    driver.drain()
    outcomes = [(r.index, r.outcome, r.spec) for r in driver.stats.records]
    metrics_sha = hashlib.sha256(json.dumps(
        metrics_json(cluster.metrics), sort_keys=True).encode()).hexdigest()
    return outcomes, metrics_sha, cluster.engine.now


def test_debitcredit_runs_are_seed_deterministic():
    """Same seed + config -> byte-identical metrics digest and clock."""
    outcomes_a, metrics_a, now_a = execute_debitcredit(seed=1306)
    outcomes_b, metrics_b, now_b = execute_debitcredit(seed=1306)
    assert outcomes_a == outcomes_b
    assert metrics_a == metrics_b
    assert now_a == now_b
    assert all(outcome == "committed" for _, outcome, _ in outcomes_a)


def test_debitcredit_different_seed_diverges():
    outcomes_a, metrics_a, _ = execute_debitcredit(seed=1306)
    outcomes_b, metrics_b, _ = execute_debitcredit(seed=1307)
    assert [spec for _, _, spec in outcomes_a] != \
        [spec for _, _, spec in outcomes_b]
    assert metrics_a != metrics_b


def test_corruption_weight_adds_corruption_episodes():
    nodes = ["n0", "n1", "n2"]
    plans = [random_plan(seed=seed, nodes=nodes, duration_ms=8_000.0,
                         episodes=6, corruption_weight=6)
             for seed in range(20)]
    kinds = {type(action).__name__
             for plan in plans for action in plan}
    assert {"TornWriteAt", "BitRotAt", "LostWriteAt",
            "LogSectorRotAt"} <= kinds
