"""The slow soak: many seeds, random fault schedules, full audits.

Run explicitly with ``pytest -m slow tests/chaos`` (excluded from the
default CI lane).  Every seed is an independent torture run; a failure
message names the seed, which reproduces the run exactly.
"""

import pytest

from repro.chaos import random_plan
from tests.chaos.conftest import run_scenario

NODES = ["n0", "n1", "n2"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(40, 52))
def test_soak_random_faults(seed):
    plan = random_plan(seed=seed, nodes=NODES, duration_ms=8_000.0,
                       episodes=5)
    run = run_scenario(plan, seed=seed, transfers=24, enqueues=6,
                       with_queue=True, run_ms=10_000.0)
    assert run.quiet, f"seed {seed}: no quiescence after repair"
    assert run.report.ok, f"seed {seed} violations:\n" + "\n".join(
        f"  {violation}" for violation in run.report.violations)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(70, 80))
def test_soak_storage_corruption(seed):
    """Random schedules with the corruption fault kinds enabled.

    ``corruption_weight`` biases half the episodes toward torn writes,
    bit rot, lost writes, and log-sector rot; the archive dump early in
    the run gives media repair its base image.  Whatever the mix, every
    audit -- including storage integrity -- must come back green.
    """
    plan = random_plan(seed=seed, nodes=NODES, duration_ms=8_000.0,
                       episodes=6, corruption_weight=9)
    run = run_scenario(plan, seed=seed, transfers=24, run_ms=10_000.0,
                       archive_dump_at_ms=350.0)
    assert run.quiet, f"seed {seed}: no quiescence after repair"
    assert run.report.ok, f"seed {seed} violations:\n" + "\n".join(
        f"  {violation}" for violation in run.report.violations)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [60, 61, 62])
def test_soak_bigger_cluster(seed):
    nodes = [f"n{i}" for i in range(5)]
    plan = random_plan(seed=seed, nodes=nodes, duration_ms=8_000.0,
                       episodes=6)
    run = run_scenario(plan, seed=seed, node_count=5, transfers=30,
                       run_ms=10_000.0)
    assert run.quiet and run.report.ok, (
        f"seed {seed} violations:\n" + "\n".join(
            f"  {v}" for v in run.report.violations))
