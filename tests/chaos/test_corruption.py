"""Storage-corruption torture: the faults the paper ruled out of scope.

Torn page writes at a power failure, bit rot on data pages, silently
lost writes, and log-sector decay -- each injected into a live cluster
under randomized traffic, with the full invariant audit afterwards.  The
stack must *degrade gracefully*: checksums detect every corruption, the
duplexed log self-repairs or salvages its tail, corrupt data pages are
restored from the archive and rolled forward, and no committed
transaction is ever lost, duplicated, or served corrupt data.
"""

from repro.chaos import (
    BitRotAt,
    ChaosController,
    ChaosWorkload,
    CrashAt,
    FaultPlan,
    LogSectorRotAt,
    LostWriteAt,
    TornWriteAt,
)
from repro.chaos.workload import build_cluster
from tests.chaos.conftest import run_scenario

#: the acceptance scenario: a torn write at a crash, single-copy rot on
#: a durable log sector, bit rot on a data page, and an ordinary crash,
#: all in one run with an early archive dump as the repair base
ACCEPTANCE_PLAN = FaultPlan.of(
    TornWriteAt(1_500.0, "n1", restart_after_ms=600.0),
    LogSectorRotAt(2_200.0, "n0"),
    BitRotAt(2_800.0, "n2", salt=7),
    CrashAt(3_500.0, "n0", restart_after_ms=500.0),
)


def test_torn_write_bit_rot_and_crash_stay_consistent():
    run = run_scenario(ACCEPTANCE_PLAN, seed=4242, transfers=14,
                       run_ms=6_000.0, archive_dump_at_ms=400.0)
    run.assert_clean()
    kinds = run.trace_kinds()
    assert "torn-write" in kinds
    assert "archive-dump" in kinds
    metrics = run.cluster.metrics
    # The bit-rotted page on n2 was detected and repaired (live repair
    # or the recovery scrub of the finale), never left latent.
    assert metrics.counter("n2", "disk.corruption_detected").value >= 1
    assert metrics.counter("n2", "media.page_repairs").value >= 1
    # The single-copy log rot on n0 healed from the duplex mirror.
    assert metrics.counter("n0", "wal.duplex_repairs").value >= 1


def test_torn_log_tail_is_salvaged():
    run = run_scenario(ACCEPTANCE_PLAN, seed=4242, transfers=14,
                       run_ms=6_000.0, archive_dump_at_ms=400.0)
    (torn,) = run.events("torn-write")
    # (time, "torn-write", node, data_key, torn_lsn): this seed's torn
    # write catches both an in-flight data sector and a buffered record.
    assert torn[2] == "n1"
    assert torn[4] != -1, "seed no longer tears a buffered log record"
    assert run.cluster.metrics.counter(
        "n1", "wal.salvage_truncations").value >= 1
    store = run.cluster.node("n1").log_store
    assert store.media_intact()


def test_lost_write_is_detected_and_repaired():
    # Arm while n1 is down: recovery's closing flush re-writes bank1's
    # page 0 (the account cells), the armed fault swallows it, and the
    # conservation read or the finale scrub must catch and repair it.
    plan = FaultPlan.of(
        CrashAt(1_200.0, "n1", restart_after_ms=600.0),
        LostWriteAt(1_400.0, "n1", segment_id="n1:bank1", page=0),
    )
    run = run_scenario(plan, seed=909, transfers=12, run_ms=5_000.0,
                       archive_dump_at_ms=300.0)
    run.assert_clean()
    assert "lost-write-armed" in run.trace_kinds()
    metrics = run.cluster.metrics
    assert metrics.counter("n1", "disk.corruption_detected").value >= 1
    assert run.cluster.node("n1").node.disk.verify_page("n1:bank1", 0)


def test_torn_tail_unreadable_on_both_copies_truncates():
    # A torn write lands half a frame on BOTH log-disk copies -- the
    # both-copies-unreadable case salvage truncation exists for.  The
    # record was never acknowledged, so dropping it loses nothing: the
    # cluster must audit clean, the suffix simply never happened.
    plan = FaultPlan.of(
        TornWriteAt(1_800.0, "n2", restart_after_ms=700.0),
    )
    run = run_scenario(plan, seed=321, transfers=12, run_ms=5_000.0,
                       archive_dump_at_ms=300.0)
    run.assert_clean()
    assert run.cluster.node("n2").log_store.media_intact()


def test_corruption_spans_and_counters_surface_in_exports():
    """A traced corruption run exports media-repair spans + counters."""
    cluster = build_cluster(3, seed=4242)
    tracer = cluster.enable_tracing()
    controller = ChaosController(cluster, ACCEPTANCE_PLAN, seed=4242)
    workload = ChaosWorkload(cluster, controller, seed=4242)
    workload.setup()
    controller.install()
    workload.schedule_archive_dumps(400.0)
    workload.schedule_traffic(transfers=14)
    workload.run(6_000.0)
    quiet = workload.finale()
    report = workload.check_invariants(quiet=quiet)
    assert quiet and report.ok, "\n".join(
        str(v) for v in report.violations)
    span_names = {span.name for span in tracer.spans}
    assert "recovery.replay" in span_names
    from repro.obs import metrics_json

    counters = cluster.metrics.snapshot()["counters"]
    assert counters.get("n2/disk.corruption_detected", 0) >= 1
    assert counters.get("n2/media.page_repairs", 0) >= 1
    assert counters.get("n0/wal.duplex_repairs", 0) >= 1
    assert "wal.duplex_repairs" in metrics_json(cluster.metrics)
