"""Torture tests for the group-commit pipeline.

The dangerous instant group commit introduces is the force window: several
transactions' commit records sit in the volatile log buffer awaiting one
shared stable-storage write.  A crash inside that window must be atomic
per transaction -- every waiter loses its commit (nothing was durable) and
none of them may have been acknowledged to a client.
:class:`CrashOnGroupForce` hits exactly that instant, via the pipeline's
``on_group_force`` hook.

The grouped pipeline must also preserve the harness's core property:
chaos runs stay a pure function of ``(seed, plan)``.
"""

from repro.chaos import (
    ChaosController,
    CrashAt,
    CrashOnGroupForce,
    FaultPlan,
)
from repro.chaos.workload import build_cluster
from repro.core.config import CommitConfig
from tests.chaos.conftest import run_scenario

CLIENTS = 6


def drive_window_crash(plan: FaultPlan, seed: int = 11):
    """Six concurrent two-cell transactions against one grouped-commit
    node; returns (controller, acked, cell values after quiescence)."""
    commit = CommitConfig.grouped(force_window_ms=5.0)
    cluster = build_cluster(1, seed=seed, commit=commit)
    controller = ChaosController(cluster, plan, seed=seed)
    controller.install()
    acked: dict[int, bool] = {}

    def worker(index: int):
        app = cluster.application("n0")
        ref = yield from app.lookup_one("bank0")
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "set_cell",
                            {"cell": 2 * index + 1, "value": 100 + index},
                            tid)
        yield from app.call(ref, "set_cell",
                            {"cell": 2 * index + 2, "value": 200 + index},
                            tid)
        ok = yield from app.end_transaction(tid)
        acked[index] = ok

    for index in range(CLIENTS):
        cluster.spawn_on("n0", worker(index), name=f"client{index}")
    assert cluster.engine.drain(120_000.0), "failed to quiesce"

    values: dict[int, int] = {}

    def reader():
        app = cluster.application("n0")
        ref = yield from app.lookup_one("bank0")
        tid = yield from app.begin_transaction()
        for cell in range(1, 2 * CLIENTS + 1):
            reply = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
            values[cell] = reply["value"]
        yield from app.abort_transaction(tid)

    process = cluster.spawn_on("n0", reader(), name="reader")
    cluster.engine.run_until(process)
    return controller, acked, values


def committed_clients(values: dict[int, int]) -> set[int]:
    return {index for index in range(CLIENTS)
            if values[2 * index + 1] == 100 + index
            and values[2 * index + 2] == 200 + index}


def assert_per_txn_atomicity(values: dict[int, int]) -> None:
    """Each transaction wrote two cells: both landed or neither did."""
    for index in range(CLIENTS):
        first = values[2 * index + 1]
        second = values[2 * index + 2]
        both = first == 100 + index and second == 200 + index
        neither = first == 0 and second == 0
        assert both or neither, \
            f"client {index} half-committed: cells=({first}, {second})"


def test_control_run_batches_and_commits_everything():
    """Without faults the six commits share one force window."""
    controller, acked, values = drive_window_crash(FaultPlan.of())
    assert committed_clients(values) == set(range(CLIENTS))
    assert all(acked.get(index) for index in range(CLIENTS))
    pipeline = controller.cluster.node("n0").rm.wal.group_pipeline
    assert pipeline is not None
    assert pipeline.coalesced >= CLIENTS
    # Group commit's whole point: fewer physical forces than commits.
    assert controller.cluster.node("n0").rm.wal.forces < CLIENTS


def test_crash_inside_force_window_commits_none():
    """A crash before the batched stable write loses every waiter --
    atomically, and without any client having been acknowledged."""
    plan = FaultPlan.of(CrashOnGroupForce("n0", min_batch=2,
                                          restart_after_ms=500.0))
    controller, acked, values = drive_window_crash(plan)

    fired = [event for event in controller.trace
             if event[1] == "group-force-crash"]
    assert len(fired) == 1, "crash trigger never fired"
    _, _, _, batch_size, _ = fired[0]
    assert batch_size >= 2, "crash hit a singleton batch"

    assert_per_txn_atomicity(values)
    # The crash fired before the stable write: none of the window's
    # waiters may be durable, and none may have been acknowledged.
    assert committed_clients(values) == set()
    assert not any(acked.values())


def test_node_recovers_and_commits_after_window_crash():
    """The crashed node comes back able to run new transactions."""
    plan = FaultPlan.of(CrashOnGroupForce("n0", min_batch=2,
                                          restart_after_ms=500.0))
    controller, _, _ = drive_window_crash(plan)
    cluster = controller.cluster
    outcome = {}

    def late_client():
        app = cluster.application("n0")
        ref = yield from app.lookup_one("bank0")
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "set_cell", {"cell": 40, "value": 7}, tid)
        outcome["ok"] = yield from app.end_transaction(tid)

    process = cluster.spawn_on("n0", late_client(), name="late")
    cluster.engine.run_until(process)
    assert outcome["ok"]


def test_group_force_action_skips_paper_pipeline():
    """Arming the trigger against a paper-pipeline node records a skip."""
    cluster = build_cluster(1, seed=3)
    plan = FaultPlan.of(CrashOnGroupForce("n0"))
    controller = ChaosController(cluster, plan, seed=3)
    controller.install()
    assert ("group-force-watch-skipped" in
            {event[1] for event in controller.trace})
    assert cluster.engine.drain(60_000.0)


GROUPED_PLAN = FaultPlan.of(
    CrashAt(700.0, "n1", restart_after_ms=500.0),
    CrashAt(1_900.0, "n0", restart_after_ms=400.0))


def execute_grouped(seed: int):
    run = run_scenario(GROUPED_PLAN, seed=seed, transfers=10,
                       run_ms=4_000.0, trace_network=True,
                       commit=CommitConfig.grouped())
    return run, run.controller.trace, run.cluster.engine.now


def test_grouped_torture_keeps_invariants():
    """Crash/recovery torture under group commit + coalesced datagrams:
    conservation, atomicity, and durability audits must still pass."""
    run, _, _ = execute_grouped(seed=909)
    run.assert_clean()


def test_grouped_runs_are_seed_deterministic():
    """The grouped pipeline must not break replayability: same
    ``(seed, plan)``, same trace, same final clock."""
    _, trace_a, now_a = execute_grouped(seed=909)
    _, trace_b, now_b = execute_grouped(seed=909)
    assert trace_a == trace_b
    assert now_a == now_b
