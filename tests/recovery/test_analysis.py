"""Unit tests for recovery log analysis and outcome resolution."""

from repro.recovery.analysis import Outcome, analyze
from repro.txn.ids import TransactionID
from repro.wal.records import (
    CheckpointRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)


def tid(seq, path=()):
    return TransactionID("n", seq, path)


def seal(records):
    for index, record in enumerate(records, start=1):
        record.lsn = index
    return records


def status(t, kind, **kwargs):
    return TransactionStatusRecord(tid=t, status=kind, **kwargs)


def test_committed_transaction_resolves_committed():
    plan = analyze(seal([ValueUpdateRecord(tid=tid(1)),
                         status(tid(1), TxnStatus.COMMITTED)]))
    assert plan.resolve(tid(1)) is Outcome.COMMITTED


def test_aborted_transaction_resolves_aborted():
    plan = analyze(seal([status(tid(1), TxnStatus.ABORTED)]))
    assert plan.resolve(tid(1)) is Outcome.ABORTED
    assert tid(1) in plan.aborted


def test_unfinished_transaction_is_loser():
    plan = analyze(seal([ValueUpdateRecord(tid=tid(1))]))
    assert plan.resolve(tid(1)) is Outcome.LOSER


def test_prepared_without_outcome_is_in_doubt():
    plan = analyze(seal([
        status(tid(1), TxnStatus.PREPARED, coordinator="boss",
               servers=("s",))]))
    assert plan.resolve(tid(1)) is Outcome.PREPARED
    assert tid(1) in plan.prepared
    assert plan.prepared[tid(1)].coordinator == "boss"


def test_prepared_then_committed_is_committed():
    plan = analyze(seal([
        status(tid(1), TxnStatus.PREPARED),
        status(tid(1), TxnStatus.COMMITTED)]))
    assert plan.resolve(tid(1)) is Outcome.COMMITTED
    assert tid(1) not in plan.prepared


def test_merged_subtransaction_follows_parent():
    child = tid(1, (1,))
    plan = analyze(seal([
        ValueUpdateRecord(tid=child),
        status(child, TxnStatus.MERGED, merged_into=tid(1)),
        status(tid(1), TxnStatus.COMMITTED)]))
    assert plan.resolve(child) is Outcome.COMMITTED


def test_merged_into_loser_parent_is_loser():
    child = tid(1, (1,))
    plan = analyze(seal([
        status(child, TxnStatus.MERGED, merged_into=tid(1))]))
    assert plan.resolve(child) is Outcome.LOSER


def test_aborted_subtransaction_does_not_follow_parent():
    child = tid(1, (1,))
    plan = analyze(seal([
        status(child, TxnStatus.ABORTED),
        status(tid(1), TxnStatus.COMMITTED)]))
    assert plan.resolve(child) is Outcome.ABORTED


def test_nested_merges_chain_to_toplevel():
    grandchild = tid(1, (1, 1))
    child = tid(1, (1,))
    plan = analyze(seal([
        status(grandchild, TxnStatus.MERGED, merged_into=child),
        status(child, TxnStatus.MERGED, merged_into=tid(1)),
        status(tid(1), TxnStatus.COMMITTED)]))
    assert plan.resolve(grandchild) is Outcome.COMMITTED


def test_committed_with_children_and_no_end_record_redrives_phase_two():
    plan = analyze(seal([
        status(tid(1), TxnStatus.COMMITTED, children=("other",))]))
    assert tid(1) in plan.committed_unacked


def test_end_record_clears_redrive():
    plan = analyze(seal([
        status(tid(1), TxnStatus.COMMITTED, children=("other",)),
        status(tid(1), TxnStatus.ENDED)]))
    assert tid(1) not in plan.committed_unacked


def test_committed_leaf_never_redrives():
    plan = analyze(seal([status(tid(1), TxnStatus.COMMITTED)]))
    assert tid(1) not in plan.committed_unacked


def test_scan_bound_without_checkpoint_is_zero():
    plan = analyze(seal([ValueUpdateRecord(tid=tid(1))]))
    assert plan.scan_bound() == 0


def test_scan_bound_uses_checkpoint_and_dirty_pages():
    checkpoint = CheckpointRecord(dirty_pages={("seg", 0): 3})
    plan = analyze(seal([
        ValueUpdateRecord(tid=tid(1)),
        ValueUpdateRecord(tid=tid(1)),
        status(tid(1), TxnStatus.COMMITTED),
        checkpoint]))
    assert plan.checkpoint is checkpoint
    assert plan.scan_bound() == 3  # the dirty page pins lsn 3


def test_clean_checkpoint_bound_is_its_own_lsn():
    checkpoint = CheckpointRecord()
    plan = analyze(seal([ValueUpdateRecord(tid=tid(1)), checkpoint]))
    assert plan.scan_bound() == checkpoint.lsn
