"""Unit tests for the off-line archive."""

import pytest

from repro.errors import RecoveryError
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.kernel.disk import Disk
from repro.recovery.archive import Archive
from repro.sim import Process


@pytest.fixture
def disk():
    ctx = SimContext(profile=ZERO_COST)
    disk = Disk(ctx)

    def fill():
        yield from disk.write_page("seg", 0, {0: "a"}, sequence_number=5)
        yield from disk.write_page("seg", 2, {1024: "b"}, sequence_number=9)
        yield from disk.write_page("other", 0, {0: "c"})

    ctx.engine.run_until(Process(ctx.engine, fill()))
    return disk


def test_empty_archive_refuses_restore(disk):
    archive = Archive()
    assert archive.empty
    with pytest.raises(RecoveryError, match="no archive dump"):
        archive.restore(disk, ["seg"])


def test_dump_and_restore_roundtrip(disk):
    archive = Archive()
    archive.dump(disk, ["seg"], flushed_lsn=42)
    assert archive.archive_lsn == 42
    assert not archive.empty

    disk.wipe_segment("seg")
    assert disk.peek_page("seg", 0) == {}
    archive.restore(disk, ["seg"])
    assert disk.peek_page("seg", 0) == {0: "a"}
    assert disk.peek_page("seg", 2) == {1024: "b"}
    # Sector-header sequence numbers come back too: operation-logging
    # recovery depends on them for the redo decision.
    assert disk.read_sequence_number("seg", 0) == 5
    assert disk.read_sequence_number("seg", 2) == 9


def test_restore_of_unarchived_segment_rejected(disk):
    archive = Archive()
    archive.dump(disk, ["seg"], flushed_lsn=1)
    with pytest.raises(RecoveryError, match="not in the archive"):
        archive.restore(disk, ["other"])


def test_dump_snapshots_not_aliases(disk):
    archive = Archive()
    archive.dump(disk, ["seg"], flushed_lsn=1)
    ctx = disk.ctx
    ctx.engine.run_until(Process(
        ctx.engine, disk.write_page("seg", 0, {0: "mutated"})))
    disk.wipe_segment("seg")
    archive.restore(disk, ["seg"])
    assert disk.peek_page("seg", 0) == {0: "a"}  # the dump-time image


def test_redump_advances(disk):
    archive = Archive()
    archive.dump(disk, ["seg"], flushed_lsn=10)
    archive.dump(disk, ["seg"], flushed_lsn=20)
    assert archive.archive_lsn == 20
    assert archive.dumps_taken == 2


def test_wipe_returns_page_count(disk):
    assert disk.wipe_segment("seg") == 2
    assert disk.wipe_segment("seg") == 0
    assert disk.peek_page("other", 0) == {0: "c"}  # other segments intact
