"""Unit tests for the self-healing RecoverySupervisor.

Two responsibilities under test: (1) a bare ``node.restart()`` -- no
external driver at all -- yields a fully recovered node, because the
supervisor hooks ``on_restart``; (2) a data server tripping
:class:`PageCorruption` gets the page repaired in place (archived base +
log roll-forward) and its read transparently retried, including repeated
faults on the same page and escalation to a full restart when the page's
history is operation-logged.
"""

import pytest

from repro.core.cluster import TabsCluster
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer
from repro.sim import Process
from tests.property.conftest import fast_config


@pytest.fixture
def cluster():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("arr"))
    cluster.start()
    return cluster


def set_cell(cluster, cell, value, name="arr"):
    def body(tid):
        app = cluster.application("n1")
        ref = yield from app.lookup_one(name)
        yield from app.call(ref, "set_cell",
                            {"cell": cell, "value": value}, tid)

    cluster.run_transaction("n1", body)


def get_cell(cluster, cell, name="arr"):
    def body(tid):
        app = cluster.application("n1")
        ref = yield from app.lookup_one(name)
        reply = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return reply["value"]

    return cluster.run_transaction("n1", body)


def dump_archive(cluster):
    tabs_node = cluster.node("n1")
    return cluster.engine.run_until(Process(
        cluster.engine, tabs_node.archive_dump_generator()))


def data_segment(cluster, name="arr"):
    return cluster.node("n1").servers[name].segment_id


# -- restart-triggered self-healing ---------------------------------------------


def test_bare_restart_self_heals(cluster):
    set_cell(cluster, 1, 77)
    tabs_node = cluster.node("n1")
    supervisor = tabs_node.supervisor
    tabs_node.crash()
    assert not tabs_node.node.alive
    # No driver: just power the kernel node on.  The supervisor must
    # notice and run the full rebuild + crash recovery on its own.
    tabs_node.node.restart()
    cluster.settle()
    assert supervisor.self_recoveries == 1
    assert tabs_node.last_recovery is not None
    assert get_cell(cluster, 1) == 77


def test_every_restart_recovers_again(cluster):
    supervisor = cluster.node("n1").supervisor
    for round_number in range(1, 4):
        set_cell(cluster, 2, round_number)
        cluster.node("n1").crash()
        cluster.node("n1").node.restart()
        cluster.settle()
        assert supervisor.self_recoveries == round_number
        assert get_cell(cluster, 2) == round_number


# -- corruption-triggered live page repair ---------------------------------------


def test_corrupt_page_is_repaired_transparently(cluster):
    set_cell(cluster, 1, 10)
    dump_archive(cluster)
    set_cell(cluster, 1, 25)  # committed after the dump: must roll forward
    cluster.settle()
    tabs_node = cluster.node("n1")
    seg = data_segment(cluster)
    disk = tabs_node.node.disk
    # Evict the clean cached copy so the next read faults from disk, then
    # rot the sector.
    tabs_node.node.vm.clear_volatile()
    assert disk.rot_page(seg, 0, salt=3)
    assert not disk.verify_page(seg, 0)

    assert get_cell(cluster, 1) == 25  # read succeeds, repair invisible

    supervisor = tabs_node.supervisor
    assert supervisor.page_repairs == 1
    assert supervisor.repair_outcomes[(seg, 0)] == "repaired"
    assert disk.verify_page(seg, 0)
    metrics = cluster.metrics
    assert metrics.counter("n1", "media.page_repairs").value == 1
    assert metrics.counter("n1", "disk.corruption_detected").value == 1


def test_repeated_faults_on_same_page_each_repair(cluster):
    set_cell(cluster, 3, 5)
    dump_archive(cluster)
    tabs_node = cluster.node("n1")
    seg = data_segment(cluster)
    disk = tabs_node.node.disk
    for round_number in range(1, 4):
        value = round_number * 11
        set_cell(cluster, 3, value)
        cluster.settle()
        tabs_node.node.vm.clear_volatile()
        assert disk.rot_page(seg, 0, salt=round_number)
        assert get_cell(cluster, 3) == value
        assert tabs_node.supervisor.page_repairs == round_number
    assert cluster.metrics.counter("n1", "media.page_repairs").value == 3


def test_uncommitted_archived_value_not_resurrected(cluster):
    """The dump's flush steals dirty uncommitted pages into the archive;
    a repair from that base must still unwind the losing transaction."""
    set_cell(cluster, 1, 10)

    def update_then_abort(tid):
        app = cluster.application("n1")
        ref = yield from app.lookup_one("arr")
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 999}, tid)
        # The dump happens mid-transaction: the archive captures 999.
        tabs_node = cluster.node("n1")
        yield from tabs_node.archive_dump_generator()
        yield from app.abort_transaction(tid, reason="test")
        return True

    app = cluster.application("n1")

    def run():
        tid = yield from app.begin_transaction()
        result = yield from update_then_abort(tid)
        return result

    cluster.run_on("n1", run())
    cluster.settle()
    tabs_node = cluster.node("n1")
    seg = data_segment(cluster)
    tabs_node.node.vm.clear_volatile()
    assert tabs_node.node.disk.rot_page(seg, 0, salt=9)
    assert get_cell(cluster, 1) == 10  # not the archived dirty 999


def test_operation_logged_page_escalates_to_full_recovery():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", OperationArrayServer.factory("ops"))
    cluster.start()

    def add(tid):
        app = cluster.application("n1")
        ref = yield from app.lookup_one("ops")
        yield from app.call(ref, "add_cell", {"cell": 1, "delta": 4}, tid)

    cluster.run_transaction("n1", add)
    dump_archive(cluster)
    cluster.run_transaction("n1", add)  # operation record after the dump
    cluster.settle()
    tabs_node = cluster.node("n1")
    seg = data_segment(cluster, "ops")
    supervisor = tabs_node.supervisor
    tabs_node.node.vm.clear_volatile()
    assert tabs_node.node.disk.rot_page(seg, 0, salt=5)

    def read(tid):
        app = cluster.application("n1")
        ref = yield from app.lookup_one("ops")
        reply = yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        return reply["value"]

    # The read that trips the corruption fails (single-page value replay
    # cannot rebuild operation-logged history), the supervisor escalates
    # to a controlled crash + self-healing restart, and afterwards the
    # node serves the correct value again.
    try:
        cluster.run_transaction("n1", read)
    except Exception:
        pass
    cluster.settle()
    assert supervisor.repair_escalations == 1
    assert supervisor.self_recoveries >= 1
    assert tabs_node.node.alive
    assert tabs_node.node.disk.verify_page(seg, 0)
    assert cluster.run_transaction("n1", read) == 8
