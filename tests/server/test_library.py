"""Unit tests for the server library (Table 3-1), against a live node."""

import pytest

from repro import TabsCluster
from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.kernel.vm import ObjectID
from repro.locking.modes import WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID
from tests.property.conftest import fast_config


class ScratchServer(BaseDataServer):
    """A bare server exposing the library for direct exercise."""

    TYPE_NAME = "scratch"
    SEGMENT_PAGES = 16

    def op_poke(self, body, tid):
        return {"ok": True}
        yield  # pragma: no cover


@pytest.fixture
def env():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", ScratchServer.factory("scratch"))
    cluster.start()
    server = cluster.node("n1").servers["scratch"]
    app = cluster.application("n1")
    return cluster, server, app


def begin(cluster, app):
    def body():
        tid = yield from app.begin_transaction()
        return tid
    return cluster.run_on("n1", body())


class TestAddressArithmetic:
    def test_create_object_id_roundtrip(self, env):
        cluster, server, app = env
        lib = server.library
        oid = lib.create_object_id(server.base_va + 100, 8)
        assert oid == ObjectID(server.segment_id, 100, 8)
        assert lib.convert_object_id_to_va(oid) == server.base_va + 100

    def test_out_of_segment_va_rejected(self, env):
        cluster, server, app = env
        with pytest.raises(Exception):
            server.library.create_object_id(1, 8)


class TestPinDiscipline:
    def test_write_to_unpinned_object_rejected(self, env):
        cluster, server, app = env
        lib = server.library
        oid = lib.create_object_id(server.base_va, 8)

        def body():
            yield from lib.write_object(oid, 1)

        with pytest.raises(ServerError, match="unpinned"):
            cluster.run_on("n1", body())

    def test_log_and_unpin_requires_pin_and_buffer(self, env):
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oid = lib.create_object_id(server.base_va, 8)

        def body():
            yield from lib.log_and_unpin(tid, oid)

        with pytest.raises(ServerError, match="without pin_and_buffer"):
            cluster.run_on("n1", body())

    def test_multi_page_object_rejected_for_value_logging(self, env):
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oid = lib.create_object_id(server.base_va, 2 * PAGE_SIZE)

        def body():
            yield from lib.pin_and_buffer(tid, oid)

        with pytest.raises(ServerError, match="one page"):
            cluster.run_on("n1", body())

    def test_pin_and_buffer_captures_old_value(self, env):
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oid = lib.create_object_id(server.base_va, 8)

        def body():
            yield from lib.lock_object(tid, oid, WRITE)
            yield from lib.pin_and_buffer(tid, oid)
            yield from lib.write_object(oid, "new")
            yield from lib.log_and_unpin(tid, oid)

        cluster.run_on("n1", body())
        durable = cluster.node("n1").rm.wal.record_at(
            cluster.node("n1").rm.wal.last_lsn - 0)  # newest record
        # The newest chained record for the txn carries old None -> "new".
        chain_head = cluster.node("n1").rm._chains[tid]
        record = cluster.node("n1").rm.wal.record_at(chain_head)
        assert record.old_value is None
        assert record.new_value == "new"
        del durable


class TestMarkedObjects:
    def test_batch_cycle(self, env):
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oids = [lib.create_object_id(server.base_va + i * 8, 8)
                for i in range(3)]

        def body():
            for oid in oids:
                yield from lib.lock_and_mark(tid, oid, WRITE)
            yield from lib.pin_and_buffer_marked_objects(tid)
            for index, oid in enumerate(oids):
                yield from lib.write_object(oid, index)
            yield from lib.log_and_unpin_marked_objects(tid)

        cluster.run_on("n1", body())
        local = lib._txns[tid]
        assert local.marked == []
        assert local.buffers == {}
        assert local.write_set == set(oids)
        for oid in oids:
            assert not cluster.node("n1").node.vm.is_pinned(oid)

    def test_locks_all_acquired_before_any_pin(self, env):
        """The checkpoint protocol requires no waiting while pinned; the
        marked-object batch acquires every lock before pinning anything."""
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oids = [lib.create_object_id(server.base_va + i * 8, 8)
                for i in range(2)]

        def body():
            for oid in oids:
                yield from lib.lock_and_mark(tid, oid, WRITE)
            # Both locks held, nothing pinned yet.
            assert all(lib.locks.holds(tid, oid, WRITE) for oid in oids)
            assert not any(cluster.node("n1").node.vm.is_pinned(oid)
                           for oid in oids)
            yield from lib.pin_and_buffer_marked_objects(tid)

        cluster.run_on("n1", body())


class TestOperationLoggingApi:
    def test_log_operation_requires_registered_appliers(self, env):
        cluster, server, app = env
        lib = server.library
        tid = begin(cluster, app)
        oid = lib.create_object_id(server.base_va, 8)

        def body():
            yield from lib.pin_object(oid)
            yield from lib.log_operation(tid, "mystery", (), "mystery", (),
                                         (oid,))

        with pytest.raises(ServerError, match="no registered recovery"):
            cluster.run_on("n1", body())

    def test_recovery_applier_dispatch(self, env):
        cluster, server, app = env
        lib = server.library
        applied = []

        def applier(args):
            applied.append(args)
            return
            yield

        lib.register_recovery_operation("noted", applier)
        cluster.run_on("n1", lib.recovery_applier("noted", (1, 2)))
        assert applied == [(1, 2)]


class TestFailureHandling:
    def test_failed_operation_releases_pins(self, env):
        """An operation that raises mid-way must not leave pages pinned
        (a pinned page can never be evicted or checkpointed)."""
        cluster, server, app = env
        lib = server.library
        oid = lib.create_object_id(server.base_va, 8)

        def failing(op, body, tid):
            yield from lib.lock_object(tid, oid, WRITE)
            yield from lib.pin_and_buffer(tid, oid)
            raise ServerError("operation exploded")

        server.library.accept_requests(failing)
        tid = begin(cluster, app)

        def call():
            ref = yield from app.lookup_one("scratch")
            yield from app.call(ref, "anything", {}, tid)

        with pytest.raises(ServerError, match="exploded"):
            cluster.run_on("n1", call())
        assert not cluster.node("n1").node.vm.is_pinned(oid)

    def test_abort_mid_second_cycle_restores_first_committed_value(self, env):
        """A transaction that logged a write of an object in an earlier
        cycle and aborts mid-way through a *second* (pinned, written,
        unlogged) cycle of the same object must come back to the value
        committed before its first write: the RM's undo walk restores
        it, and the abort scrub of the in-flight cycle must not
        overwrite that with the transaction's own -- equally aborted --
        first write."""
        cluster, server, app = env
        lib = server.library
        oid = lib.create_object_id(server.base_va + 256, 8)

        def seed():
            tid = yield from app.begin_transaction()
            yield from lib._ensure_joined(tid)
            yield from lib.lock_object(tid, oid, WRITE)
            yield from lib.pin_and_buffer(tid, oid)
            yield from lib.write_object(oid, "committed")
            yield from lib.log_and_unpin(tid, oid)
            committed = yield from app.end_transaction(tid)
            assert committed

        cluster.run_on("n1", seed())

        def aborted():
            tid = yield from app.begin_transaction()
            yield from lib._ensure_joined(tid)
            yield from lib.lock_object(tid, oid, WRITE)
            yield from lib.pin_and_buffer(tid, oid)  # cycle 1, logged
            yield from lib.write_object(oid, "first")
            yield from lib.log_and_unpin(tid, oid)
            yield from lib.pin_and_buffer(tid, oid)  # cycle 2, never logged
            yield from lib.write_object(oid, "second")
            yield from app.abort_transaction(tid)

        cluster.run_on("n1", aborted())

        def read():
            value = yield from lib.read_object(oid)
            return value

        assert cluster.run_on("n1", read()) == "committed"
        assert not cluster.node("n1").node.vm.is_pinned(oid)

    def test_unknown_system_op_rejected(self, env):
        cluster, server, app = env
        from repro.kernel.messages import Message
        from repro.kernel.ports import Port

        reply = Port(cluster.ctx, node=cluster.node("n1").node)
        server.library.port.send(Message(op="ds.bogus", reply_to=reply))
        response = cluster.engine.run_until(reply.receive())
        assert "error" in response.body


class TestSubtransactionTransfer:
    def test_subtxn_commit_merges_server_state(self, env):
        cluster, server, app = env
        lib = server.library
        parent = TransactionID("n1", 77)
        child = parent.child(1)
        oid = lib.create_object_id(server.base_va, 8)

        def body():
            yield from lib.lock_object(child, oid, WRITE)
            yield from lib.pin_and_buffer(child, oid)
            yield from lib.write_object(oid, 5)
            yield from lib.log_and_unpin(child, oid)

        cluster.run_on("n1", body())
        from repro.kernel.messages import Message
        from repro.kernel.ports import Port

        reply = Port(cluster.ctx, node=cluster.node("n1").node)
        lib.port.send(Message(op="ds.subtxn_commit",
                              body={"child": child, "parent": parent},
                              reply_to=reply))
        cluster.engine.run_until(reply.receive())
        assert lib.locks.holds(parent, oid, WRITE)
        assert not lib.locks.holds(child, oid)
        assert oid in lib._txns[parent].write_set
        assert child not in lib._txns
