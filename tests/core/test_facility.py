"""Tests for the TABS node/cluster assembly (Figure 3-1)."""

import pytest

from repro import TabsCluster, TabsConfig, TabsError
from repro.kernel.costs import ACHIEVABLE_1985, MEASURED_1985
from repro.servers.int_array import IntegerArrayServer


def test_component_inventory_matches_figure_3_1():
    """A TABS node runs the four system components of Figure 3-1 plus the
    user data servers."""
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    inventory = cluster.node("n1").component_inventory()
    assert inventory == {
        "name_server": "name dissemination",
        "communication_manager": "network communication",
        "recovery_manager": "recovery and log management",
        "transaction_manager": "transaction management",
        "array": "data server",
    }


def test_all_four_services_registered():
    cluster = TabsCluster(TabsConfig())
    tabs = cluster.add_node("n1")
    for service in ("name_server", "communication_manager",
                    "recovery_manager", "transaction_manager"):
        assert tabs.node.service(service).alive


def test_duplicate_node_rejected():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    with pytest.raises(TabsError):
        cluster.add_node("n1")


def test_duplicate_server_rejected():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    with pytest.raises(TabsError):
        cluster.add_server("n1", IntegerArrayServer.factory("array"))


def test_unknown_node_rejected():
    cluster = TabsCluster(TabsConfig())
    with pytest.raises(TabsError):
        cluster.node("ghost")


def test_segment_va_allocation_never_overlaps():
    cluster = TabsCluster(TabsConfig())
    tabs = cluster.add_node("n1")
    first = tabs.allocate_segment_va()
    second = tabs.allocate_segment_va()
    assert second > first
    assert second - first >= IntegerArrayServer.SEGMENT_PAGES * 512


def test_config_presets():
    assert TabsConfig.measured().profile is MEASURED_1985
    assert not TabsConfig.measured().merged_architecture
    assert TabsConfig.improved_architecture().merged_architecture
    assert TabsConfig.improved_architecture().profile is MEASURED_1985
    new = TabsConfig.new_primitives()
    assert new.merged_architecture and new.profile is ACHIEVABLE_1985


def test_config_with_override():
    config = TabsConfig().with_(lock_timeout_ms=1.0)
    assert config.lock_timeout_ms == 1.0
    assert config.profile is MEASURED_1985


def test_merged_architecture_flag_reaches_context():
    cluster = TabsCluster(TabsConfig.improved_architecture())
    assert cluster.ctx.merged_architecture


def test_settle_drains_background_work():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    cluster.settle()
    assert cluster.engine.pending_count() == 0


def test_last_recovery_report_recorded():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    assert cluster.node("n1").last_recovery is not None
    assert cluster.node("n1").last_recovery.log_records_scanned == 0
