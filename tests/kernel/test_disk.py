"""Tests for the simulated disk."""

import pytest

from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive
from repro.kernel.disk import MAX_SEQUENCE_NUMBER, Disk
from repro.sim import Process


@pytest.fixture
def ctx():
    return SimContext()


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def test_read_of_unwritten_page_is_empty(ctx):
    disk = Disk(ctx)
    assert run(ctx, disk.read_page("seg", 0)) == {}


def test_write_then_read_roundtrip(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 3, {0: "a", 8: 42})
        data = yield from disk.read_page("seg", 3)
        return data

    assert run(ctx, body()) == {0: "a", 8: 42}


def test_read_returns_copy_not_alias(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 0, {0: 1})
        data = yield from disk.read_page("seg", 0)
        data[0] = 999
        fresh = yield from disk.read_page("seg", 0)
        return fresh

    assert run(ctx, body()) == {0: 1}


def test_random_read_cost(ctx):
    disk = Disk(ctx)
    run(ctx, disk.read_page("seg", 7))
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 1
    assert ctx.engine.now == MEASURED_1985.time_of(Primitive.RANDOM_PAGED_IO)


def test_sequential_reads_are_cheaper(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.read_page("seg", 0)  # random (first access)
        yield from disk.read_page("seg", 1)  # sequential
        yield from disk.read_page("seg", 2)  # sequential
        yield from disk.read_page("seg", 9)  # random (skip)

    run(ctx, body())
    assert ctx.meter.count(Primitive.SEQUENTIAL_READ) == 2
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 2


def test_write_breaks_sequential_run(ctx):
    """Log writes break up sequential access on the single Perq disk."""
    disk = Disk(ctx)

    def body():
        yield from disk.read_page("seg", 0)
        yield from disk.write_page("other", 5, {})
        yield from disk.read_page("seg", 1)  # arm moved: random again

    run(ctx, body())
    assert ctx.meter.count(Primitive.SEQUENTIAL_READ) == 0
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 3


def test_writes_always_charged_random(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 0, {})
        yield from disk.write_page("seg", 1, {})

    run(ctx, body())
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 2


def test_sequence_number_header_roundtrip(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 4, {}, sequence_number=12345))
    assert disk.read_sequence_number("seg", 4) == 12345
    assert disk.read_sequence_number("seg", 5) == 0


def test_sequence_number_wraps_at_39_bits(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {}, sequence_number=MAX_SEQUENCE_NUMBER + 5))
    assert disk.read_sequence_number("seg", 0) == 4


def test_contents_survive_peek_without_cost(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {16: "x"}))
    before = ctx.engine.now
    assert disk.peek_page("seg", 0) == {16: "x"}
    assert ctx.engine.now == before
