"""Tests for the simulated disk."""

import pytest

from repro.errors import PageCorruption
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive
from repro.kernel.disk import MAX_SEQUENCE_NUMBER, Disk
from repro.sim import Process


@pytest.fixture
def ctx():
    return SimContext()


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def test_read_of_unwritten_page_is_empty(ctx):
    disk = Disk(ctx)
    assert run(ctx, disk.read_page("seg", 0)) == {}


def test_write_then_read_roundtrip(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 3, {0: "a", 8: 42})
        data = yield from disk.read_page("seg", 3)
        return data

    assert run(ctx, body()) == {0: "a", 8: 42}


def test_read_returns_copy_not_alias(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 0, {0: 1})
        data = yield from disk.read_page("seg", 0)
        data[0] = 999
        fresh = yield from disk.read_page("seg", 0)
        return fresh

    assert run(ctx, body()) == {0: 1}


def test_random_read_cost(ctx):
    disk = Disk(ctx)
    run(ctx, disk.read_page("seg", 7))
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 1
    assert ctx.engine.now == MEASURED_1985.time_of(Primitive.RANDOM_PAGED_IO)


def test_sequential_reads_are_cheaper(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.read_page("seg", 0)  # random (first access)
        yield from disk.read_page("seg", 1)  # sequential
        yield from disk.read_page("seg", 2)  # sequential
        yield from disk.read_page("seg", 9)  # random (skip)

    run(ctx, body())
    assert ctx.meter.count(Primitive.SEQUENTIAL_READ) == 2
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 2


def test_write_breaks_sequential_run(ctx):
    """Log writes break up sequential access on the single Perq disk."""
    disk = Disk(ctx)

    def body():
        yield from disk.read_page("seg", 0)
        yield from disk.write_page("other", 5, {})
        yield from disk.read_page("seg", 1)  # arm moved: random again

    run(ctx, body())
    assert ctx.meter.count(Primitive.SEQUENTIAL_READ) == 0
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 3


def test_writes_always_charged_random(ctx):
    disk = Disk(ctx)

    def body():
        yield from disk.write_page("seg", 0, {})
        yield from disk.write_page("seg", 1, {})

    run(ctx, body())
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 2


def test_sequence_number_header_roundtrip(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 4, {}, sequence_number=12345))
    assert disk.read_sequence_number("seg", 4) == 12345
    assert disk.read_sequence_number("seg", 5) == 0


def test_sequence_number_wraps_at_39_bits(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {}, sequence_number=MAX_SEQUENCE_NUMBER + 5))
    assert disk.read_sequence_number("seg", 0) == 4


def test_contents_survive_peek_without_cost(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {16: "x"}))
    before = ctx.engine.now
    assert disk.peek_page("seg", 0) == {16: "x"}
    assert ctx.engine.now == before


# -- corruption detection and the fault surface ---------------------------------


def test_bit_rot_is_detected_on_read(ctx):
    disk = Disk(ctx, node_name="n1")
    run(ctx, disk.write_page("seg", 0, {0: 1, 4: 2}))
    seen = []
    disk.on_corruption.append(lambda seg, page: seen.append((seg, page)))
    assert disk.rot_page("seg", 0, salt=1)
    assert not disk.verify_page("seg", 0)
    with pytest.raises(PageCorruption):
        run(ctx, disk.read_page("seg", 0))
    assert seen == [("seg", 0)]
    assert disk.corruption_detected == 1
    assert ctx.metrics.counter("n1", "disk.corruption_detected").value == 1


def test_rot_is_deterministic_in_salt(ctx):
    first, second = Disk(ctx), Disk(ctx)
    for disk in (first, second):
        run(ctx, disk.write_page("seg", 0, {0: "a", 4: "b", 8: "c"}))
        disk.rot_page("seg", 0, salt=7)
    assert first.peek_page("seg", 0) == second.peek_page("seg", 0)


def test_rot_of_virgin_sector_is_a_no_op(ctx):
    disk = Disk(ctx)
    assert not disk.rot_page("seg", 9)
    assert disk.verify_page("seg", 9)


def test_clean_rewrite_clears_corruption(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: 1}))
    disk.rot_page("seg", 0)
    run(ctx, disk.write_page("seg", 0, {0: 2}))
    assert disk.verify_page("seg", 0)
    assert run(ctx, disk.read_page("seg", 0)) == {0: 2}


def test_torn_write_keeps_a_prefix_under_the_full_checksum(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: "a", 4: "b", 8: "c", 12: "d"}))
    assert disk.tear_page("seg", 0)
    assert disk.peek_page("seg", 0) == {0: "a", 4: "b"}
    assert not disk.verify_page("seg", 0)


def test_tear_last_write_targets_the_in_flight_sector(ctx):
    disk = Disk(ctx)
    assert disk.tear_last_write() is None  # nothing ever written
    run(ctx, disk.write_page("seg", 1, {0: 1, 4: 2}))
    run(ctx, disk.write_page("seg", 5, {0: 3, 4: 4}))
    assert disk.tear_last_write() == ("seg", 5)
    assert disk.verify_page("seg", 1)
    assert not disk.verify_page("seg", 5)


def test_lost_write_acknowledged_but_detectable(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: "old"}))
    disk.arm_lost_write("seg", 0)
    run(ctx, disk.write_page("seg", 0, {0: "new"}))
    # The drive acknowledged the write; the platter still has the old
    # data, and the freshly written header checksum exposes it.
    assert disk.lost_writes == 1
    assert disk.peek_page("seg", 0) == {0: "old"}
    assert not disk.verify_page("seg", 0)


def test_misdirected_write_corrupts_victim_and_intended_sector(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: "home"}))
    run(ctx, disk.write_page("seg", 3, {0: "victim"}))
    disk.arm_misdirected_write("seg", 0, to_page=3)
    run(ctx, disk.write_page("seg", 0, {0: "stray"}))
    assert disk.misdirected_writes == 1
    # Victim: foreign data under its old checksum.
    assert disk.peek_page("seg", 3) == {0: "stray"}
    assert not disk.verify_page("seg", 3)
    # Intended sector: new checksum over the stale data.
    assert disk.peek_page("seg", 0) == {0: "home"}
    assert not disk.verify_page("seg", 0)


def test_clear_armed_faults_disarms_pending_faults(ctx):
    disk = Disk(ctx)
    disk.arm_lost_write("seg", 0)
    disk.arm_misdirected_write("seg", 1, to_page=2)
    disk.clear_armed_faults()
    run(ctx, disk.write_page("seg", 0, {0: 1}))
    run(ctx, disk.write_page("seg", 1, {0: 2}))
    assert disk.lost_writes == 0 and disk.misdirected_writes == 0
    assert disk.verify_page("seg", 0) and disk.verify_page("seg", 1)


def test_corrupt_pages_lists_only_failing_sectors(ctx):
    disk = Disk(ctx)
    for page in range(3):
        run(ctx, disk.write_page("seg", page, {0: page}))
    run(ctx, disk.write_page("other", 0, {0: 9}))
    disk.rot_page("seg", 1)
    disk.rot_page("seg", 2)
    assert disk.corrupt_pages("seg") == [1, 2]
    assert disk.corrupt_pages("other") == []
    assert disk.page_keys() == [("other", 0), ("seg", 0), ("seg", 1),
                                ("seg", 2)]


def test_restore_segment_installs_trusted_checksums(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: 1}))
    disk.rot_page("seg", 0)
    disk.restore_segment("seg", {0: {0: 42}}, {0: 7})
    assert disk.verify_page("seg", 0)
    assert run(ctx, disk.read_page("seg", 0)) == {0: 42}
    assert disk.read_sequence_number("seg", 0) == 7


def test_wipe_segment_removes_corruption_with_the_data(ctx):
    disk = Disk(ctx)
    run(ctx, disk.write_page("seg", 0, {0: 1}))
    disk.rot_page("seg", 0)
    assert disk.wipe_segment("seg") == 1
    assert disk.verify_page("seg", 0)
    assert disk.page_keys() == []
