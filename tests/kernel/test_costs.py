"""Tests for the primitive cost model and the cost meter."""

import pytest

from repro.kernel.costs import (
    ACHIEVABLE_1985,
    MEASURED_1985,
    ZERO_COST,
    CostMeter,
    CpuCosts,
    Phase,
    Primitive,
)


def test_measured_profile_matches_table_5_1():
    t = MEASURED_1985.times
    assert t[Primitive.DATA_SERVER_CALL] == 26.1
    assert t[Primitive.INTER_NODE_DATA_SERVER_CALL] == 89.0
    assert t[Primitive.DATAGRAM] == 25.0
    assert t[Primitive.SMALL_MESSAGE] == 3.0
    assert t[Primitive.LARGE_MESSAGE] == 4.4
    assert t[Primitive.POINTER_MESSAGE] == 18.3
    assert t[Primitive.RANDOM_PAGED_IO] == 32.0
    assert t[Primitive.SEQUENTIAL_READ] == 16.0
    assert t[Primitive.STABLE_STORAGE_WRITE] == 79.0


def test_achievable_profile_matches_table_5_5():
    t = ACHIEVABLE_1985.times
    assert t[Primitive.DATA_SERVER_CALL] == 2.5
    assert t[Primitive.INTER_NODE_DATA_SERVER_CALL] == 9.0
    assert t[Primitive.DATAGRAM] == 2.0
    assert t[Primitive.SMALL_MESSAGE] == 1.0
    assert t[Primitive.LARGE_MESSAGE] == 1.25
    assert t[Primitive.POINTER_MESSAGE] == 15.0
    assert t[Primitive.RANDOM_PAGED_IO] == 32.0  # "no improvement assumed"
    assert t[Primitive.SEQUENTIAL_READ] == 10.0
    assert t[Primitive.STABLE_STORAGE_WRITE] == 32.0


def test_every_profile_covers_every_primitive():
    for profile in (MEASURED_1985, ACHIEVABLE_1985, ZERO_COST):
        assert set(profile.times) == set(Primitive)


def test_profile_scaling():
    half = MEASURED_1985.scaled(0.5)
    assert half.time_of(Primitive.DATAGRAM) == 12.5
    assert "0.5" in half.name


def test_cpu_costs_calibration_sums():
    """The calibrated splits must reproduce the Section 5.2 aggregates."""
    cpu = CpuCosts()
    # Local read-only txn: TM 36 ms, RM 5 ms -> TABS process time 41 ms.
    assert cpu.tm_begin + cpu.tm_commit_read == 36.0
    assert cpu.rm_read_txn == 5.0
    # Write adds RM 10+8 and TM 24 -> TABS process time 83 ms.
    read_tabs = cpu.tm_begin + cpu.tm_commit_read + cpu.rm_read_txn
    write_tabs = (read_tabs + cpu.rm_spool_record +
                  cpu.rm_commit_write_extra + cpu.tm_commit_write_extra)
    assert read_tabs == 41.0
    assert write_tabs == 83.0


def test_cpu_costs_scaled():
    cpu = CpuCosts().scaled(0.5)
    assert cpu.tm_begin == 6.0
    assert cpu.rm_read_txn == 2.5


def test_meter_counts_per_phase():
    meter = CostMeter()
    meter.phase = Phase.PRE_COMMIT
    meter.record(Primitive.SMALL_MESSAGE, 3.0)
    meter.record(Primitive.SMALL_MESSAGE, 3.0)
    meter.phase = Phase.COMMIT
    meter.record(Primitive.SMALL_MESSAGE, 3.0)
    meter.record(Primitive.STABLE_STORAGE_WRITE, 79.0)
    assert meter.count(Primitive.SMALL_MESSAGE, Phase.PRE_COMMIT) == 2
    assert meter.count(Primitive.SMALL_MESSAGE, Phase.COMMIT) == 1
    assert meter.count(Primitive.SMALL_MESSAGE) == 3
    assert meter.phase_counts(Phase.COMMIT) == {
        Primitive.SMALL_MESSAGE: 1, Primitive.STABLE_STORAGE_WRITE: 1}


def test_meter_fractional_counts():
    """Half-datagram accounting (Table 5-3's 2.5 datagrams)."""
    meter = CostMeter()
    meter.phase = Phase.COMMIT
    meter.record(Primitive.DATAGRAM, 25.0)
    meter.record(Primitive.DATAGRAM, 25.0)
    meter.record(Primitive.DATAGRAM, 12.5, fraction=0.5)
    assert meter.count(Primitive.DATAGRAM, Phase.COMMIT) == pytest.approx(2.5)


def test_meter_primitive_time_accumulates():
    meter = CostMeter()
    meter.phase = Phase.PRE_COMMIT
    meter.record(Primitive.SMALL_MESSAGE, 3.0)
    meter.record(Primitive.LARGE_MESSAGE, 4.4)
    assert meter.primitive_time[Phase.PRE_COMMIT] == pytest.approx(7.4)


def test_meter_cpu_accounting_and_reset():
    meter = CostMeter()
    meter.record_cpu("TM", 12.0)
    meter.record_cpu("TM", 24.0)
    meter.record_cpu("RM", 5.0)
    assert meter.total_cpu(("TM",)) == 36.0
    assert meter.total_cpu() == 41.0
    meter.reset()
    assert meter.total_cpu() == 0.0
    assert meter.phase is Phase.BACKGROUND
