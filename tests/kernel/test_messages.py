"""Unit tests for typed-message classification."""

from repro.kernel.costs import Primitive
from repro.kernel.messages import (
    SMALL_MESSAGE_LIMIT,
    Message,
    MessageKind,
    classify_size,
)


def test_kind_to_primitive_mapping():
    assert MessageKind.SMALL.primitive is Primitive.SMALL_MESSAGE
    assert MessageKind.LARGE.primitive is Primitive.LARGE_MESSAGE
    assert MessageKind.POINTER.primitive is Primitive.POINTER_MESSAGE
    assert MessageKind.UNCHARGED.primitive is None


def test_paper_thresholds():
    """'Small messages typically contain less than 100 bytes, but in all
    cases have less than 500 bytes.'"""
    assert SMALL_MESSAGE_LIMIT == 500
    assert classify_size(99) is MessageKind.SMALL
    assert classify_size(499) is MessageKind.SMALL
    assert classify_size(500) is MessageKind.LARGE
    assert classify_size(1100) is MessageKind.LARGE  # the average large


def test_message_ids_are_unique():
    ids = {Message(op="x").msg_id for _ in range(100)}
    assert len(ids) == 100


def test_defaults():
    message = Message(op="ping")
    assert message.kind is MessageKind.SMALL
    assert message.tid is None
    assert message.reply_to is None
    assert message.free_reply is False
    assert message.sender_node == ""
