"""Tests for ports and typed messages."""

import pytest

from repro.errors import InvalidPort
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Phase, Primitive
from repro.kernel.messages import Message, MessageKind, classify_size
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.sim import Process


@pytest.fixture
def ctx():
    return SimContext()


def test_classify_size_thresholds():
    assert classify_size(0) is MessageKind.SMALL
    assert classify_size(499) is MessageKind.SMALL
    assert classify_size(500) is MessageKind.LARGE
    assert classify_size(1100) is MessageKind.LARGE


def test_send_receive_roundtrip_charges_small_message(ctx):
    port = Port(ctx, name="p")
    port.send(Message(op="ping"))
    event = port.receive()
    message = ctx.engine.run_until(event)
    assert message.op == "ping"
    assert ctx.engine.now == MEASURED_1985.time_of(Primitive.SMALL_MESSAGE)
    assert ctx.meter.count(Primitive.SMALL_MESSAGE) == 1


def test_large_and_pointer_messages_charge_their_primitives(ctx):
    port = Port(ctx, name="p")
    port.send(Message(op="a", kind=MessageKind.LARGE))
    port.send(Message(op="b", kind=MessageKind.POINTER))
    ctx.engine.run()
    assert ctx.meter.count(Primitive.LARGE_MESSAGE) == 1
    assert ctx.meter.count(Primitive.POINTER_MESSAGE) == 1


def test_uncharged_send_records_nothing(ctx):
    port = Port(ctx, name="p")
    port.send(Message(op="rpc", kind=MessageKind.UNCHARGED))
    message = ctx.engine.run_until(port.receive())
    assert message.op == "rpc"
    assert ctx.engine.now == 0.0
    assert not ctx.meter.counts


def test_charged_false_overrides_kind(ctx):
    port = Port(ctx, name="p")
    port.send(Message(op="x"), charged=False)
    ctx.engine.run()
    assert not ctx.meter.counts


def test_fifo_ordering(ctx):
    port = Port(ctx, name="p")
    for i in range(5):
        port.send(Message(op=str(i)))
    received = []

    def consumer():
        for _ in range(5):
            message = yield port.receive()
            received.append(message.op)

    ctx.engine.run_until(Process(ctx.engine, consumer()))
    assert received == ["0", "1", "2", "3", "4"]


def test_receive_blocks_until_message(ctx):
    port = Port(ctx, name="p")
    event = port.receive()
    ctx.engine.run()
    assert not event.triggered
    port.send(Message(op="late"))
    assert ctx.engine.run_until(event).op == "late"


def test_try_receive(ctx):
    port = Port(ctx, name="p")
    assert port.try_receive() is None
    port.send(Message(op="x"))
    ctx.engine.run()
    assert port.try_receive().op == "x"
    assert port.try_receive() is None


def test_send_to_dead_port_is_dropped(ctx):
    port = Port(ctx, name="p")
    port.destroy()
    port.send(Message(op="lost"))
    ctx.engine.run()
    assert port.dropped == 1
    assert port.pending() == 0


def test_receive_on_dead_port_raises(ctx):
    port = Port(ctx, name="p")
    port.destroy()
    with pytest.raises(InvalidPort):
        port.receive()


def test_message_in_flight_to_crashing_port_is_lost(ctx):
    node = Node(ctx, "n")
    port = node.create_port("svc")
    port.send(Message(op="doomed"))
    node.crash()
    ctx.engine.run()
    assert port.dropped == 1


def test_sender_node_stamped(ctx):
    node = Node(ctx, "alpha")
    port = node.create_port("svc")
    port.send(Message(op="hello"))
    message = ctx.engine.run_until(port.receive())
    assert message.sender_node == "alpha"


def test_phase_attribution_follows_meter_phase(ctx):
    port = Port(ctx, name="p")
    ctx.meter.phase = Phase.PRE_COMMIT
    port.send(Message(op="before"))
    ctx.engine.run()
    ctx.meter.phase = Phase.COMMIT
    port.send(Message(op="during"))
    ctx.engine.run()
    assert ctx.meter.count(Primitive.SMALL_MESSAGE, Phase.PRE_COMMIT) == 1
    assert ctx.meter.count(Primitive.SMALL_MESSAGE, Phase.COMMIT) == 1
