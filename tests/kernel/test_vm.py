"""Tests for virtual memory, recoverable segments, and demand paging."""

import pytest

from repro.errors import KernelError
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST, Primitive
from repro.kernel.disk import PAGE_SIZE, Disk
from repro.kernel.vm import (
    NullPagerClient,
    ObjectID,
    PagerClient,
    RecoverableSegment,
    VirtualMemory,
)
from repro.sim import Process


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST)


def make_vm(ctx, capacity=8, pages=64):
    disk = Disk(ctx)
    vm = VirtualMemory(ctx, disk, capacity_pages=capacity)
    segment = RecoverableSegment("seg", page_count=pages, base_va=0x10000)
    vm.map_segment(segment)
    return vm, segment


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


class TestObjectID:
    def test_single_page_object(self):
        oid = ObjectID("seg", offset=100, length=8)
        assert list(oid.pages()) == [0]
        assert oid.single_page

    def test_object_spanning_page_boundary(self):
        oid = ObjectID("seg", offset=PAGE_SIZE - 4, length=8)
        assert list(oid.pages()) == [0, 1]
        assert not oid.single_page

    def test_multi_page_object(self):
        oid = ObjectID("seg", offset=0, length=3 * PAGE_SIZE)
        assert list(oid.pages()) == [0, 1, 2]

    def test_zero_length_object_occupies_its_page(self):
        assert list(ObjectID("seg", 600, 0).pages()) == [1]


class TestAddressArithmetic:
    def test_va_roundtrip(self, ctx):
        vm, segment = make_vm(ctx)
        oid = ObjectID("seg", offset=516, length=4)
        va = vm.va_for_object_id(oid)
        assert va == segment.base_va + 516
        assert vm.object_id_for_va(va, 4) == oid

    def test_unmapped_va_rejected(self, ctx):
        vm, _ = make_vm(ctx)
        with pytest.raises(KernelError):
            vm.object_id_for_va(1, 4)

    def test_overlapping_segments_rejected(self, ctx):
        vm, segment = make_vm(ctx)
        overlapping = RecoverableSegment("other", page_count=1,
                                         base_va=segment.base_va + 512)
        with pytest.raises(KernelError):
            vm.map_segment(overlapping)

    def test_unmapped_segment_access_rejected(self, ctx):
        vm, _ = make_vm(ctx)
        with pytest.raises(KernelError):
            run(ctx, vm.read_object(ObjectID("ghost", 0, 4)))


class TestPaging:
    def test_read_write_roundtrip(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 40, 4)

        def body():
            yield from vm.write_object(oid, 7)
            value = yield from vm.read_object(oid)
            return value

        assert run(ctx, body()) == 7

    def test_unwritten_object_reads_none(self, ctx):
        vm, _ = make_vm(ctx)
        assert run(ctx, vm.read_object(ObjectID("seg", 0, 4))) is None

    def test_fault_count(self, ctx):
        vm, _ = make_vm(ctx)

        def body():
            yield from vm.read_object(ObjectID("seg", 0, 4))
            yield from vm.read_object(ObjectID("seg", 8, 4))   # same page
            yield from vm.read_object(ObjectID("seg", 600, 4))  # next page

        run(ctx, body())
        assert vm.faults == 2

    def test_eviction_when_cache_full(self, ctx):
        vm, _ = make_vm(ctx, capacity=2)

        def body():
            for page in range(3):
                yield from vm.read_object(ObjectID("seg", page * PAGE_SIZE, 4))

        run(ctx, body())
        assert vm.evictions == 1
        assert len(vm.resident_pages()) == 2

    def test_dirty_eviction_writes_back_to_disk(self, ctx):
        vm, _ = make_vm(ctx, capacity=1)
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.write_object(oid, "durable")
            # Faulting another page evicts page 0, forcing the write-back.
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))
            value = yield from vm.read_object(oid)
            return value

        assert run(ctx, body()) == "durable"
        assert vm.disk.peek_page("seg", 0) == {0: "durable"}

    def test_clean_eviction_skips_disk_write(self, ctx):
        vm, _ = make_vm(ctx, capacity=1)

        def body():
            yield from vm.read_object(ObjectID("seg", 0, 4))
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))

        run(ctx, body())
        assert vm.disk.writes == 0

    def test_lru_victim_selection(self, ctx):
        vm, _ = make_vm(ctx, capacity=2)

        def body():
            yield from vm.read_object(ObjectID("seg", 0, 4))          # page 0
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))  # page 1
            yield from vm.read_object(ObjectID("seg", 0, 4))          # touch 0
            yield from vm.read_object(ObjectID("seg", 2 * PAGE_SIZE, 4))

        run(ctx, body())
        resident = vm.resident_pages()
        assert ("seg", 0) in resident       # recently touched: kept
        assert ("seg", 1) not in resident   # LRU: evicted

    def test_multi_page_object_faults_every_page(self, ctx):
        vm, _ = make_vm(ctx)
        run(ctx, vm.read_object(ObjectID("seg", 0, 3 * PAGE_SIZE)))
        assert vm.faults == 3


class TestPinning:
    def test_pinned_page_never_evicted(self, ctx):
        vm, _ = make_vm(ctx, capacity=2)
        pinned = ObjectID("seg", 0, 4)

        def body():
            yield from vm.pin(pinned)
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))
            yield from vm.read_object(ObjectID("seg", 2 * PAGE_SIZE, 4))

        run(ctx, body())
        assert ("seg", 0) in vm.resident_pages()
        assert vm.is_pinned(pinned)

    def test_all_pinned_is_an_error(self, ctx):
        vm, _ = make_vm(ctx, capacity=1)

        def body():
            yield from vm.pin(ObjectID("seg", 0, 4))
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))

        with pytest.raises(KernelError, match="pinned"):
            run(ctx, body())

    def test_unpin_restores_evictability(self, ctx):
        vm, _ = make_vm(ctx, capacity=1)
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.pin(oid)
            vm.unpin(oid)
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))

        run(ctx, body())
        assert ("seg", 0) not in vm.resident_pages()

    def test_unpin_of_unpinned_rejected(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 0, 4)
        run(ctx, vm.read_object(oid))
        with pytest.raises(KernelError):
            vm.unpin(oid)

    def test_pin_counts_nest(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.pin(oid)
            yield from vm.pin(oid)

        run(ctx, body())
        vm.unpin(oid)
        assert vm.is_pinned(oid)
        vm.unpin(oid)
        assert not vm.is_pinned(oid)

    def test_unpin_all(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 0, 4)
        run(ctx, vm.pin(oid))
        vm.unpin_all()
        assert not vm.is_pinned(oid)


class RecordingPager(PagerClient):
    """Captures the kernel <-> Recovery Manager conversation."""

    def __init__(self):
        self.events = []

    def first_modified(self, segment_id, page):
        self.events.append(("first_modified", segment_id, page))
        return
        yield

    def write_permission(self, segment_id, page, page_lsn):
        self.events.append(("write_permission", segment_id, page, page_lsn))
        return 777
        yield

    def page_written(self, segment_id, page):
        self.events.append(("page_written", segment_id, page))
        return
        yield


class TestWalGate:
    def test_first_modify_notice_once_per_pin_epoch(self, ctx):
        vm, _ = make_vm(ctx)
        vm.pager_client = pager = RecordingPager()
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.pin(oid)
            yield from vm.write_object(oid, 1)
            yield from vm.write_object(oid, 2)  # same epoch: no new notice
            vm.unpin(oid)
            yield from vm.pin(oid)
            yield from vm.write_object(oid, 3)  # new epoch: notice again
            vm.unpin(oid)

        run(ctx, body())
        notices = [e for e in pager.events if e[0] == "first_modified"]
        assert len(notices) == 2

    def test_write_back_asks_permission_and_stamps_sequence_number(self, ctx):
        vm, _ = make_vm(ctx, capacity=1)
        vm.pager_client = pager = RecordingPager()
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.write_object(oid, "x")
            vm.set_page_lsn(oid, 42)
            yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))

        run(ctx, body())
        assert ("write_permission", "seg", 0, 42) in pager.events
        assert ("page_written", "seg", 0) in pager.events
        assert vm.disk.read_sequence_number("seg", 0) == 777

    def test_flush_all_forces_every_dirty_page(self, ctx):
        vm, _ = make_vm(ctx)
        vm.pager_client = RecordingPager()

        def body():
            yield from vm.write_object(ObjectID("seg", 0, 4), 1)
            yield from vm.write_object(ObjectID("seg", PAGE_SIZE, 4), 2)
            yield from vm.flush_all()

        run(ctx, body())
        assert vm.dirty_pages() == []
        assert vm.disk.peek_page("seg", 0) == {0: 1}
        assert vm.disk.peek_page("seg", 1) == {PAGE_SIZE: 2}


class TestCrash:
    def test_clear_volatile_loses_unflushed_writes(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 0, 4)
        run(ctx, vm.write_object(oid, "lost"))
        vm.clear_volatile()
        assert vm.resident_pages() == []
        assert vm.disk.peek_page("seg", 0) == {}

    def test_flushed_writes_survive_clear(self, ctx):
        vm, _ = make_vm(ctx)
        oid = ObjectID("seg", 0, 4)

        def body():
            yield from vm.write_object(oid, "kept")
            yield from vm.flush_all()

        run(ctx, body())
        vm.clear_volatile()
        assert run(ctx, vm.read_object(oid)) == "kept"


def test_paging_costs_charged(ctx_factory=None):
    ctx = SimContext()  # real Table 5-1 costs
    vm, _ = make_vm(ctx)
    ctx.engine.run_until(Process(
        ctx.engine, vm.read_object(ObjectID("seg", 0, 4))))
    assert ctx.meter.count(Primitive.RANDOM_PAGED_IO) == 1


def test_zero_capacity_rejected():
    ctx = SimContext(profile=ZERO_COST)
    with pytest.raises(KernelError):
        VirtualMemory(ctx, Disk(ctx), capacity_pages=0)


def test_null_pager_client_allows_everything():
    ctx = SimContext(profile=ZERO_COST)
    vm, _ = make_vm(ctx, capacity=1)
    assert isinstance(vm.pager_client, NullPagerClient)

    def body():
        yield from vm.write_object(ObjectID("seg", 0, 4), 1)
        yield from vm.read_object(ObjectID("seg", PAGE_SIZE, 4))

    ctx.engine.run_until(Process(ctx.engine, body()))
    assert vm.disk.read_sequence_number("seg", 0) == 0
