"""Unit tests for the simulation context's cost accounting."""

import pytest

from repro.kernel.context import SimContext
from repro.kernel.costs import ACHIEVABLE_1985, MEASURED_1985, Phase, Primitive


def test_charge_records_and_delays():
    ctx = SimContext()
    ctx.meter.phase = Phase.PRE_COMMIT
    timeout = ctx.charge(Primitive.DATAGRAM)
    assert timeout.delay == 25.0
    assert ctx.meter.count(Primitive.DATAGRAM, Phase.PRE_COMMIT) == 1
    ctx.engine.run()
    assert ctx.engine.now == 25.0


def test_fractional_charge():
    """The half-datagram of the parallel prepare send."""
    ctx = SimContext()
    ctx.meter.phase = Phase.COMMIT
    timeout = ctx.charge(Primitive.DATAGRAM, fraction=0.5)
    assert timeout.delay == 12.5
    assert ctx.meter.count(Primitive.DATAGRAM) == pytest.approx(0.5)


def test_delay_of_without_counting():
    ctx = SimContext()
    assert ctx.delay_of(Primitive.SMALL_MESSAGE, count=False) == 3.0
    assert not ctx.meter.counts


def test_cpu_charge_accrues_to_component():
    ctx = SimContext()
    ctx.cpu("TM", 12.0)
    ctx.cpu("TM", 24.0)
    ctx.cpu("RM", 5.0)
    assert ctx.meter.total_cpu(("TM",)) == 36.0
    assert ctx.meter.total_cpu() == 41.0
    # Each charge is an event; created concurrently they overlap, so the
    # clock advances to the longest (a process serializes them by
    # yielding one at a time).
    ctx.engine.run()
    assert ctx.engine.now == 24.0


def test_profile_swap_changes_prices():
    measured = SimContext(profile=MEASURED_1985)
    achievable = SimContext(profile=ACHIEVABLE_1985)
    assert measured.delay_of(Primitive.STABLE_STORAGE_WRITE,
                             count=False) == 79.0
    assert achievable.delay_of(Primitive.STABLE_STORAGE_WRITE,
                               count=False) == 32.0


def test_seeded_random_is_deterministic():
    first = SimContext(seed=7)
    second = SimContext(seed=7)
    assert [first.random.random() for _ in range(5)] == \
        [second.random.random() for _ in range(5)]


def test_merged_architecture_defaults_off():
    assert SimContext().merged_architecture is False
