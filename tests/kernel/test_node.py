"""Tests for the node abstraction and its crash/restart semantics."""

import pytest

from repro.errors import NodeDown
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.kernel.vm import ObjectID, RecoverableSegment
from repro.sim import Process, Timeout


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST)


def test_spawn_runs_process(ctx):
    node = Node(ctx, "n")
    seen = []

    def body():
        yield Timeout(ctx.engine, 1.0)
        seen.append("ran")

    node.spawn(body())
    ctx.engine.run()
    assert seen == ["ran"]


def test_crash_kills_processes(ctx):
    node = Node(ctx, "n")
    seen = []

    def body():
        yield Timeout(ctx.engine, 100.0)
        seen.append("should never run")

    node.spawn(body())
    ctx.engine.run(until=1.0)
    node.crash()
    ctx.engine.run()
    assert seen == []
    assert not node.alive


def test_crash_destroys_ports(ctx):
    node = Node(ctx, "n")
    port = node.create_port("svc")
    node.crash()
    port.send(Message(op="lost"))
    ctx.engine.run()
    assert port.dropped == 1


def test_crash_clears_volatile_memory_but_not_disk(ctx):
    node = Node(ctx, "n")
    node.vm.map_segment(RecoverableSegment("seg", 4, base_va=0))
    oid = ObjectID("seg", 0, 4)

    def body():
        yield from node.vm.write_object(oid, "dirty")
        yield from node.vm.flush_page("seg", 0)
        yield from node.vm.write_object(oid, "volatile-only")

    ctx.engine.run_until(Process(ctx.engine, body()))
    node.crash()
    # The flushed value survives on disk; the later update is lost.
    assert node.disk.peek_page("seg", 0) == {0: "dirty"}


def test_spawn_on_crashed_node_rejected(ctx):
    node = Node(ctx, "n")
    node.crash()
    with pytest.raises(NodeDown):
        node.spawn(iter(()))
    with pytest.raises(NodeDown):
        node.create_port()


def test_restart_bumps_epoch_and_resets_vm(ctx):
    node = Node(ctx, "n")
    node.vm.map_segment(RecoverableSegment("seg", 4, base_va=0))
    node.crash()
    node.restart()
    assert node.alive
    assert node.epoch == 1
    # The new address space has no segments mapped yet.
    with pytest.raises(Exception):
        node.vm.segment("seg")


def test_restart_preserves_disk(ctx):
    node = Node(ctx, "n")
    node.vm.map_segment(RecoverableSegment("seg", 4, base_va=0))
    ctx.engine.run_until(Process(
        ctx.engine, node.disk.write_page("seg", 0, {0: "persisted"})))
    node.crash()
    node.restart()
    assert node.disk.peek_page("seg", 0) == {0: "persisted"}


def test_crash_and_restart_idempotent(ctx):
    node = Node(ctx, "n")
    node.crash()
    node.crash()
    node.restart()
    node.restart()
    assert node.epoch == 1


def test_service_registry(ctx):
    node = Node(ctx, "n")
    port = node.create_port("tm")
    node.register_service("transaction_manager", port)
    assert node.service("transaction_manager") is port
    with pytest.raises(NodeDown):
        node.service("missing")


def test_crash_clears_services(ctx):
    node = Node(ctx, "n")
    node.register_service("transaction_manager", node.create_port())
    node.crash()
    node.restart()
    with pytest.raises(NodeDown):
        node.service("transaction_manager")
