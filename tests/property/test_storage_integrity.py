"""Property tests for the storage-integrity checksums.

The detection guarantee both repair layers rest on: CRC-32 catches every
single-bit error.  Exhaustively flip each bit of a checksummed log frame
and the codec must reject it; decay any stored value of a disk page and
the next read must raise :class:`PageCorruption` rather than serve the
corrupt data.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import PageCorruption, WalCodecError
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.kernel.disk import Disk, checksum_page
from repro.sim import Process
from repro.wal.codec import (
    decode_record_checksummed,
    encode_record_checksummed,
    verify_checksummed_frame,
)
from tests.wal.test_record_codec import records, values

#: offset -> value maps as servers lay them out on a page
page_data = st.dictionaries(st.integers(0, 64), values,
                            min_size=1, max_size=4)


# -- log frames ---------------------------------------------------------------------


@settings(max_examples=60)
@given(records)
def test_checksummed_roundtrip(record):
    framed = encode_record_checksummed(record)
    assert verify_checksummed_frame(framed)
    assert decode_record_checksummed(framed) == record


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(records)
def test_every_single_bit_flip_in_a_log_frame_is_detected(record):
    framed = bytearray(encode_record_checksummed(record))
    for index in range(len(framed)):
        for bit in range(8):
            framed[index] ^= 1 << bit
            corrupt = bytes(framed)
            framed[index] ^= 1 << bit
            assert not verify_checksummed_frame(corrupt)
            with pytest.raises(WalCodecError):
                decode_record_checksummed(corrupt)


@settings(max_examples=60)
@given(records)
def test_every_truncation_of_a_checksummed_frame_is_detected(record):
    framed = encode_record_checksummed(record)
    for cut in range(len(framed)):
        assert not verify_checksummed_frame(framed[:cut])


# -- disk pages ---------------------------------------------------------------------


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=page_data, salt=st.integers(1, 2**16))
def test_any_rotted_page_value_is_detected_on_read(data, salt):
    ctx = SimContext(profile=ZERO_COST)
    disk = Disk(ctx)
    ctx.engine.run_until(Process(
        ctx.engine, disk.write_page("seg", 0, data)))
    if not disk.rot_page("seg", 0, salt=salt):
        return  # nothing stored to rot (empty page)
    assert not disk.verify_page("seg", 0)
    with pytest.raises(PageCorruption):
        ctx.engine.run_until(Process(
            ctx.engine, disk.read_page("seg", 0)))


@settings(max_examples=60)
@given(data=page_data, other=values, offset=st.integers(0, 64))
def test_page_checksum_separates_any_value_change(data, other, offset):
    mutated = dict(data)
    mutated[offset] = other
    if mutated == data:
        return
    assert checksum_page("seg", 0, data) != checksum_page("seg", 0, mutated)


@settings(max_examples=60)
@given(data=page_data)
def test_page_checksum_binds_page_identity(data):
    """Misdirected-write detection: the same payload on a different
    sector (or segment) must not verify against the original checksum."""
    base = checksum_page("seg", 0, data)
    assert checksum_page("seg", 1, data) != base
    assert checksum_page("other", 0, data) != base
