"""Property tests: DebitCredit conserves money for any seed and load.

The workload's three balance tiers (branches, tellers, accounts) are
redundant ledgers of the same committed flows, and the history file is
their journal.  Whatever the seed, client count, topology packing, or
locality, after a drain:

- ``sum(branches) == sum(tellers) == sum(accounts) == sum(history)``,
- the history row count equals the committed transaction count, and
- the standard durable-state audits (atomicity, client commits,
  drainage) hold.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cluster import TabsCluster
from repro.core.config import WorkloadConfig
from repro.workloads import DebitCreditWorkload
from tests.property.conftest import fast_config

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def run_workload(seed: int, txns: int, workload: WorkloadConfig,
                 power_cycle: bool = False) -> DebitCreditWorkload:
    cluster = TabsCluster(fast_config(seed=seed, workload=workload))
    topology = cluster.build_workload()
    driver = DebitCreditWorkload(cluster, topology, seed=seed)
    driver.schedule_traffic(txns=txns)
    driver.run(until_ms=1_000_000.0)
    driver.drain()
    if power_cycle:
        driver.crash_and_recover_all()
    return driver


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       txns=st.integers(min_value=1, max_value=24))
@SETTINGS
def test_money_is_conserved_after_drain(seed: int, txns: int):
    driver = run_workload(seed, txns, WorkloadConfig(
        branches=2, accounts_per_branch=500))
    report = driver.check_invariants()
    assert report.ok, report.violations
    assert driver.stats.outcomes() == {"committed": txns}


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       branches=st.integers(min_value=1, max_value=4),
       branches_per_node=st.integers(min_value=1, max_value=4),
       locality=st.sampled_from([0.0, 0.5, 0.9, 1.0]))
@SETTINGS
def test_conservation_across_topology_packings(seed: int, branches: int,
                                               branches_per_node: int,
                                               locality: float):
    """Any packing of branches onto nodes, any locality mix."""
    driver = run_workload(seed, 10, WorkloadConfig(
        branches=branches, branches_per_node=branches_per_node,
        tellers_per_branch=3, accounts_per_branch=100,
        locality=locality))
    report = driver.check_invariants()
    assert report.ok, report.violations


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@SETTINGS
def test_history_row_count_equals_committed_count(seed: int):
    driver = run_workload(seed, 15, WorkloadConfig(
        branches=2, accounts_per_branch=500))
    sums = driver._tier_sums()
    committed = driver.stats.committed()
    assert sums["history_rows"] == len(committed)
    assert sums["history"] == sum(r.spec.amount for r in committed)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_conservation_survives_a_power_cycle(seed: int):
    """Crash-all/recover-all rebuilds the same conserved state from the
    logs, and the disk-versus-log audits then apply too."""
    driver = run_workload(seed, 8, WorkloadConfig(
        branches=2, accounts_per_branch=200), power_cycle=True)
    report = driver.check_invariants()
    assert report.ok, report.violations


def test_sparse_accounts_scale_to_millions():
    """The millions() preset builds and serves traffic: account cells
    live in sparse segments, so scale costs address space, not memory."""
    driver = run_workload(7, 6, WorkloadConfig(
        branches=2, branches_per_node=2, accounts_per_branch=1_000_000,
        tellers_per_branch=2))
    report = driver.check_invariants()
    assert report.ok, report.violations
    touched = {r.spec.account for r in driver.stats.records}
    assert max(touched) > 1_000  # the draw really spans the space
