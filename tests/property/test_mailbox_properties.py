"""Property-based tests: mailbox conservation under mixed outcomes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TabsCluster
from repro.servers.mailbox import MailboxServer
from tests.property.conftest import fast_config

step = st.tuples(
    st.sampled_from(["put_commit", "put_abort", "take_commit",
                     "take_abort", "read"]),
    st.integers(0, 2),     # mailbox
    st.integers(0, 99),    # message payload
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(step, max_size=20), crash=st.booleans())
def test_mailbox_conserves_committed_messages(steps, crash):
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", MailboxServer.factory("mail"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("mail"))

    model = {0: [], 1: [], 2: []}  # committed contents per mailbox

    for kind, mailbox, payload in steps:
        action, _, outcome = kind.partition("_")

        def body(action=action, mailbox=mailbox, payload=payload):
            tid = yield from app.begin_transaction()
            if action == "put":
                yield from app.call(ref, "put",
                                    {"mailbox": mailbox,
                                     "message": payload}, tid)
                result = None
            elif action == "take":
                response = yield from app.call(ref, "take_all",
                                               {"mailbox": mailbox}, tid)
                result = response["messages"]
            else:
                response = yield from app.call(ref, "read_all",
                                               {"mailbox": mailbox}, tid)
                result = response["messages"]
            return tid, result

        tid, result = cluster.run_on("n1", body())
        if action == "read":
            assert sorted(result) == sorted(model[mailbox])
            cluster.run_on("n1", app.end_transaction(tid))
            continue
        if outcome == "commit":
            assert cluster.run_on("n1", app.end_transaction(tid))
            if action == "put":
                model[mailbox].append(payload)
            else:
                assert sorted(result) == sorted(model[mailbox])
                model[mailbox] = []
        else:
            cluster.run_on("n1", app.abort_transaction(tid))

    if crash:
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        ref = cluster.run_on("n1", app.lookup_one("mail"))

    for mailbox in range(3):
        def drain(tid, mailbox=mailbox):
            response = yield from app.call(ref, "take_all",
                                           {"mailbox": mailbox}, tid)
            return response["messages"]

        remaining = cluster.run_transaction("n1", drain)
        assert sorted(remaining) == sorted(model[mailbox])
