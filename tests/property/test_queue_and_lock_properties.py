"""Property-based tests: weak-queue conservation, lock-manager safety,
and quorum intersection."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TabsCluster
from repro.errors import LockTimeout
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.locking.manager import LockManager
from repro.locking.modes import READ, WRITE
from repro.servers.weak_queue import WeakQueueServer
from repro.sim import Process
from tests.property.conftest import fast_config


# ---------------------------------------------------------------------------
# Weak queue: committed items come out exactly once, aborted ones never.
# ---------------------------------------------------------------------------

queue_step = st.tuples(
    st.sampled_from(["enqueue_commit", "enqueue_abort", "dequeue_commit",
                     "dequeue_abort"]),
    st.integers(0, 999),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(queue_step, max_size=25))
def test_weak_queue_conserves_committed_items(steps):
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", WeakQueueServer.factory("q", capacity=64))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("q"))

    inside = []       # items committed into the queue, multiset
    dequeued = []     # items committed out

    for kind, item in steps:
        action, outcome = kind.rsplit("_", 1)

        def body(action=action, item=item):
            tid = yield from app.begin_transaction()
            if action == "enqueue":
                yield from app.call(ref, "enqueue", {"data": item}, tid)
                result = item
            else:
                try:
                    response = yield from app.call(ref, "dequeue", {}, tid)
                    result = response["data"]
                except Exception:
                    yield from app.abort_transaction(tid)
                    return ("empty", None)
            return (tid, result)

        tid, result = cluster.run_on("n1", body())
        if tid == "empty":
            assert not inside  # dequeue may only fail when nothing is in
            continue
        if outcome == "commit":
            assert cluster.run_on("n1", app.end_transaction(tid))
            if action == "enqueue":
                inside.append(item)
            else:
                dequeued.append(result)
                inside.remove(result)
        else:
            cluster.run_on("n1", app.abort_transaction(tid))

    # Drain: everything still inside comes out exactly once.
    def drain(tid):
        out = []
        while True:
            try:
                response = yield from app.call(ref, "dequeue", {}, tid)
            except Exception:
                break
            out.append(response["data"])
        return out

    def run_drain():
        tid = yield from app.begin_transaction()
        out = yield from drain(tid)
        yield from app.end_transaction(tid)
        return out

    remaining = cluster.run_on("n1", run_drain())
    assert sorted(remaining) == sorted(inside)


# ---------------------------------------------------------------------------
# Lock manager: no two transactions ever hold incompatible locks.
# ---------------------------------------------------------------------------

lock_step = st.tuples(
    st.sampled_from(["lock_read", "lock_write", "release"]),
    st.integers(0, 3),   # transaction index
    st.integers(0, 2),   # object index
)


@settings(max_examples=50, deadline=None)
@given(steps=st.lists(lock_step, max_size=40))
def test_lock_manager_never_grants_conflicts(steps):
    ctx = SimContext(profile=ZERO_COST)
    locks = LockManager(ctx, default_timeout_ms=10.0)
    tids = [f"t{i}" for i in range(4)]

    def holder_modes(key):
        entry = locks._locks.get(key)
        return {tid: list(modes) for tid, modes in
                (entry.holders.items() if entry else ())}

    for kind, txn_index, obj_index in steps:
        tid, key = tids[txn_index], f"obj{obj_index}"
        if kind == "release":
            locks.release_all(tid)
        else:
            mode = READ if kind == "lock_read" else WRITE

            def attempt():
                try:
                    yield from locks.lock(tid, key, mode)
                except LockTimeout:
                    pass

            ctx.engine.run_until(Process(ctx.engine, attempt()))
        # Invariant: across every key, all pairs of holders compatible.
        for check_key in (f"obj{i}" for i in range(3)):
            holders = holder_modes(check_key)
            for a, a_modes in holders.items():
                for b, b_modes in holders.items():
                    if a == b:
                        continue
                    for held in a_modes:
                        for wanted in b_modes:
                            assert locks.protocol.compatible(held, wanted), \
                                f"{a}:{held} and {b}:{wanted} co-held"


# ---------------------------------------------------------------------------
# Weighted voting: any read quorum intersects any write quorum.
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(weights=st.lists(st.integers(1, 5), min_size=1, max_size=6),
       data=st.data())
def test_quorum_intersection(weights, data):
    total = sum(weights)
    read_quorum = data.draw(st.integers(1, total))
    write_quorum = data.draw(st.integers(1, total))
    if read_quorum + write_quorum <= total or write_quorum * 2 <= total:
        return  # the constructor rejects these; nothing to check

    indices = list(range(len(weights)))

    def subsets_reaching(target):
        found = []
        for mask in range(1, 1 << len(indices)):
            chosen = [i for i in indices if mask & (1 << i)]
            if sum(weights[i] for i in chosen) >= target:
                found.append(set(chosen))
        return found

    for read_set in subsets_reaching(read_quorum):
        for write_set in subsets_reaching(write_quorum):
            assert read_set & write_set, (
                f"read quorum {read_set} missed write quorum {write_set}")
