"""Shared helpers for property-based tests.

These tests drive the full simulated stack, so they use the zero-cost
profile (logic is under test, not latency) and modest example counts.
"""

from repro.core.config import TabsConfig
from repro.kernel.costs import ZERO_COST, ZERO_CPU


def fast_config(**overrides) -> TabsConfig:
    return TabsConfig(profile=ZERO_COST, cpu_costs=ZERO_CPU, **overrides)
