"""Property-based tests: the B-tree always matches a model dictionary and
keeps its structural invariants under arbitrary operation sequences."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TabsCluster
from repro.servers.btree import (
    MAX_KEYS,
    META_PAGE,
    MIN_KEYS,
    BTreeServer,
)
from tests.property.conftest import fast_config

KEYS = [f"k{i:02d}" for i in range(40)]

operation = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(0)),
    st.tuples(st.just("update"), st.sampled_from(KEYS), st.integers(0, 99)),
)


def build():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", BTreeServer.factory("tree"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("tree"))

    def create(tid):
        yield from app.call(ref, "create_directory", {"directory": "d"}, tid)

    cluster.run_transaction("n1", create)
    return cluster, app, ref


def apply_ops(cluster, app, ref, ops, model):
    """Apply each op in its own transaction, mirroring into the model."""
    for kind, key, value in ops:
        def body(tid, kind=kind, key=key, value=value):
            yield from app.call(ref, kind, {"directory": "d", "key": key,
                                            "value": value}, tid)
        expect_error = ((kind == "insert" and key in model)
                        or (kind in ("delete", "update")
                            and key not in model))
        if expect_error:
            with pytest.raises(Exception):
                cluster.run_transaction("n1", body)
            continue
        cluster.run_transaction("n1", body)
        if kind == "delete":
            del model[key]
        else:
            model[key] = value


def tree_pages(cluster, root):
    """Walk the committed tree structure straight off the page cache."""
    tabs = cluster.node("n1")
    disk = tabs.node.disk
    vm = tabs.node.vm

    def node_at(page):
        frame = vm.frame("n1:tree", page)
        if frame is not None:
            return frame.data.get(page * 512)
        return disk.peek_page("n1:tree", page).get(page * 512)

    seen = []

    def walk(page, depth, lo, hi):
        node = node_at(page)
        assert node is not None, f"dangling child page {page}"
        keys = node["keys"]
        assert keys == sorted(keys), "keys must be sorted"
        # Leaf splits copy the separator up (B+-tree style), so the lower
        # bound is inclusive and the upper bound exclusive.
        for key in keys:
            assert lo is None or key >= lo
            assert hi is None or key < hi
        seen.append((page, depth, node))
        if node["leaf"]:
            return [depth]
        assert len(node["children"]) == len(keys) + 1
        depths = []
        bounds = [lo, *keys, hi]
        for index, child in enumerate(node["children"]):
            depths.extend(walk(child, depth + 1,
                               bounds[index], bounds[index + 1]))
        return depths

    depths = walk(root, 0, None, None)
    return seen, depths


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, max_size=40))
def test_btree_matches_model_dict(ops):
    cluster, app, ref = build()
    model = {}
    apply_ops(cluster, app, ref, ops, model)

    def scan(tid):
        result = yield from app.call(ref, "scan", {"directory": "d"}, tid)
        return result["entries"]

    entries = cluster.run_transaction("n1", scan)
    assert dict(entries) == model
    assert [key for key, _ in entries] == sorted(model)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, min_size=10, max_size=60))
def test_btree_structural_invariants(ops):
    cluster, app, ref = build()
    model = {}
    apply_ops(cluster, app, ref, ops, model)

    tabs = cluster.node("n1")
    vm = tabs.node.vm

    frame = vm.frame("n1:tree", META_PAGE)
    meta = (frame.data.get(0) if frame is not None
            else tabs.node.disk.peek_page("n1:tree", META_PAGE).get(0))
    root = meta["directories"]["d"]
    seen, depths = tree_pages(cluster, root)

    # All leaves at the same depth; occupancy bounds hold everywhere but
    # the root.
    assert len(set(depths)) == 1
    for page, _depth, node in seen:
        assert len(node["keys"]) <= MAX_KEYS
        if page != root:
            assert len(node["keys"]) >= MIN_KEYS


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, min_size=5, max_size=30),
       crash_after=st.integers(0, 29))
def test_btree_recovers_model_after_crash(ops, crash_after):
    cluster, app, ref = build()
    model = {}
    apply_ops(cluster, app, ref, ops[:crash_after], model)
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app = cluster.application("n1")

    def scan(tid):
        ref2 = yield from app.lookup_one("tree")
        result = yield from app.call(ref2, "scan", {"directory": "d"}, tid)
        return result["entries"]

    assert dict(cluster.run_transaction("n1", scan)) == model
