"""Property-based tests of the recovery invariants.

The fundamental guarantee: after any crash, recoverable objects "reflect
only the operations of committed and prepared transactions" -- every cell
equals the value written by the last *committed* transaction that touched
it, regardless of how commits, aborts, and the crash interleave.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TabsCluster
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer
from tests.property.conftest import fast_config

# One scripted transaction: outcome + the cells it writes.
txn_strategy = st.tuples(
    st.sampled_from(["commit", "abort", "leave_open"]),
    st.lists(st.tuples(st.integers(1, 8), st.integers(0, 99)),
             min_size=1, max_size=4),
)


def build(factory):
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", factory)
    cluster.start()
    app = cluster.application("n1")
    name = "srv"
    ref = cluster.run_on("n1", app.lookup_one(name))
    return cluster, app, ref


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(txn_strategy, max_size=8))
def test_value_recovery_restores_exactly_committed_state(script):
    cluster, app, ref = build(IntegerArrayServer.factory("srv"))
    committed_state = {}

    open_count = 0
    touched = set(range(1, 9))
    for outcome, writes in script:
        # Transactions left open hold their locks until the crash, so each
        # writes its own disjoint cell range and never blocks the script.
        if outcome == "leave_open":
            open_count += 1
            writes = [(cell + 8 * open_count, value)
                      for cell, value in writes]
        touched.update(cell for cell, _ in writes)

        def body(writes=writes):
            tid = yield from app.begin_transaction()
            for cell, value in writes:
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": value}, tid)
            return tid

        tid = cluster.run_on("n1", body())
        if outcome == "commit":
            committed = cluster.run_on("n1", app.end_transaction(tid))
            assert committed
            for cell, value in writes:
                committed_state[cell] = value
        elif outcome == "abort":
            cluster.run_on("n1", app.abort_transaction(tid))
        # "leave_open": still active when the crash hits

    cluster.crash_node("n1")
    cluster.restart_node("n1")
    app = cluster.application("n1")

    def read_all(tid):
        ref2 = yield from app.lookup_one("srv")
        values = {}
        for cell in sorted(touched):
            result = yield from app.call(ref2, "get_cell",
                                         {"cell": cell}, tid)
            values[cell] = result["value"]
        return values

    values = cluster.run_transaction("n1", read_all)
    for cell in sorted(touched):
        assert values[cell] == committed_state.get(cell, 0)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(
    st.tuples(st.sampled_from(["commit", "abort", "leave_open"]),
              st.lists(st.tuples(st.integers(1, 8), st.integers(-5, 5)),
                       min_size=1, max_size=3)),
    max_size=6))
def test_operation_recovery_restores_exactly_committed_state(script):
    """Same invariant under the three-pass operation-logging algorithm,
    with add_cell (a non-idempotent operation -- exactly what the sequence
    numbers in the sector headers exist to make safe)."""
    cluster, app, ref = build(OperationArrayServer.factory("srv"))
    committed_state = {}

    open_count = 0
    touched = set(range(1, 9))
    for outcome, deltas in script:
        if outcome == "leave_open":
            open_count += 1
            deltas = [(cell + 8 * open_count, delta)
                      for cell, delta in deltas]
        touched.update(cell for cell, _ in deltas)

        def body(deltas=deltas):
            tid = yield from app.begin_transaction()
            for cell, delta in deltas:
                yield from app.call(ref, "add_cell",
                                    {"cell": cell, "delta": delta}, tid)
            return tid

        tid = cluster.run_on("n1", body())
        if outcome == "commit":
            assert cluster.run_on("n1", app.end_transaction(tid))
            for cell, delta in deltas:
                committed_state[cell] = committed_state.get(cell, 0) + delta
        elif outcome == "abort":
            cluster.run_on("n1", app.abort_transaction(tid))

    cluster.crash_node("n1")
    cluster.restart_node("n1")
    app = cluster.application("n1")

    def read_all(tid):
        ref2 = yield from app.lookup_one("srv")
        values = {}
        for cell in sorted(touched):
            result = yield from app.call(ref2, "get_cell",
                                         {"cell": cell}, tid)
            values[cell] = result["value"]
        return values

    values = cluster.run_transaction("n1", read_all)
    for cell in sorted(touched):
        assert values[cell] == committed_state.get(cell, 0)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(txn_strategy, min_size=1, max_size=6),
       crash_twice=st.booleans())
def test_recovery_is_idempotent_across_double_crashes(script, crash_twice):
    """Crashing again immediately after recovery must change nothing."""
    cluster, app, ref = build(IntegerArrayServer.factory("srv"))
    committed_state = {}
    open_count = 0
    touched = set(range(1, 9))
    for outcome, writes in script:
        if outcome == "leave_open":
            open_count += 1
            writes = [(cell + 8 * open_count, value)
                      for cell, value in writes]
        touched.update(cell for cell, _ in writes)

        def body(writes=writes):
            tid = yield from app.begin_transaction()
            for cell, value in writes:
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": value}, tid)
            return tid
        tid = cluster.run_on("n1", body())
        if outcome == "commit":
            cluster.run_on("n1", app.end_transaction(tid))
            for cell, value in writes:
                committed_state[cell] = value
        elif outcome == "abort":
            cluster.run_on("n1", app.abort_transaction(tid))

    cluster.crash_node("n1")
    cluster.restart_node("n1")
    if crash_twice:
        cluster.crash_node("n1")
        cluster.restart_node("n1")

    app = cluster.application("n1")

    def read_all(tid):
        ref2 = yield from app.lookup_one("srv")
        values = {}
        for cell in sorted(touched):
            result = yield from app.call(ref2, "get_cell",
                                         {"cell": cell}, tid)
            values[cell] = result["value"]
        return values

    values = cluster.run_transaction("n1", read_all)
    for cell in sorted(touched):
        assert values[cell] == committed_state.get(cell, 0)
