"""Property-based test: the transactional file system matches a model."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TabsCluster
from repro.servers.filesystem import TransactionalFileSystemServer, normalize
from tests.property.conftest import fast_config

NAMES = ["a", "b", "c"]

operation = st.one_of(
    st.tuples(st.just("mkdir"), st.sampled_from(NAMES), st.just("")),
    st.tuples(st.just("create"), st.sampled_from(NAMES), st.just("")),
    st.tuples(st.just("write"), st.sampled_from(NAMES),
              st.text(alphabet="xyz", max_size=600)),
    st.tuples(st.just("append"), st.sampled_from(NAMES),
              st.text(alphabet="pq", max_size=300)),
    st.tuples(st.just("remove"), st.sampled_from(NAMES), st.just("")),
)


def build():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1",
                       TransactionalFileSystemServer.factory("disk"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("disk"))

    def mkfs(tid):
        yield from app.call(ref, "mkfs", {}, tid)

    cluster.run_transaction("n1", mkfs)
    return cluster, app, ref


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, max_size=25), crash=st.booleans())
def test_filesystem_matches_model(ops, crash):
    cluster, app, ref = build()
    model: dict[str, object] = {}  # path -> content string or "<dir>"

    for kind, name, data in ops:
        path = normalize(f"/{name}")

        def body(tid, kind=kind, path=path, data=data):
            payload = {"path": path}
            if kind in ("write", "append"):
                payload["data"] = data
            yield from app.call(ref, kind, payload, tid)

        should_fail = (
            (kind in ("mkdir", "create") and path in model)
            or (kind in ("write", "append")
                and model.get(path, "<dir>") == "<dir>")
            or (kind == "remove" and path not in model))
        if should_fail:
            with pytest.raises(Exception):
                cluster.run_transaction("n1", body)
            continue
        cluster.run_transaction("n1", body)
        if kind == "mkdir":
            model[path] = "<dir>"
        elif kind == "create":
            model[path] = ""
        elif kind == "write":
            model[path] = data
        elif kind == "append":
            model[path] = model[path] + data
        else:
            del model[path]

    if crash:
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        ref = cluster.run_on("n1", app.lookup_one("disk"))

    def verify(tid):
        listing = yield from app.call(ref, "list_dir", {"path": "/"}, tid)
        contents = {}
        for name in listing["entries"]:
            stat = yield from app.call(ref, "stat",
                                       {"path": f"/{name}"}, tid)
            if stat["kind"] == "dir":
                contents[f"/{name}"] = "<dir>"
            else:
                data = yield from app.call(ref, "read",
                                           {"path": f"/{name}"}, tid)
                contents[f"/{name}"] = data["data"]
        return contents

    assert cluster.run_transaction("n1", verify) == model
