"""Unit tests for generator-based processes."""

import pytest

from repro.errors import Interrupt, ProcessKilled, SimulationError, TabsError
from repro.sim import Engine, Process, Timeout


def test_process_runs_and_returns_value():
    engine = Engine()

    def body():
        yield Timeout(engine, 5.0)
        return "result"

    process = Process(engine, body())
    assert engine.run_until(process) == "result"
    assert engine.now == 5.0
    assert not process.alive


def test_process_receives_event_values():
    engine = Engine()

    def body():
        value = yield Timeout(engine, 1.0, "hello")
        return value.upper()

    assert engine.run_until(Process(engine, body())) == "HELLO"


def test_processes_interleave_deterministically():
    engine = Engine()
    trace = []

    def worker(name, period):
        for _ in range(3):
            yield Timeout(engine, period)
            trace.append((engine.now, name))

    Process(engine, worker("a", 2.0)).defused = True
    Process(engine, worker("b", 3.0)).defused = True
    engine.run()
    # At t=6.0 both fire; b's timeout was scheduled first (at t=3.0) so it
    # wakes first -- deterministic FIFO ordering of same-time events.
    assert trace == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"),
                     (6.0, "a"), (9.0, "b")]


def test_process_waits_on_another_process():
    engine = Engine()

    def child():
        yield Timeout(engine, 4.0)
        return 10

    def parent():
        value = yield Process(engine, child())
        return value + 1

    assert engine.run_until(Process(engine, parent())) == 11


def test_process_exception_propagates_to_waiter():
    engine = Engine()

    def child():
        yield Timeout(engine, 1.0)
        raise TabsError("child blew up")

    def parent():
        try:
            yield Process(engine, child())
        except TabsError:
            return "caught"

    assert engine.run_until(Process(engine, parent())) == "caught"


def test_unobserved_process_failure_crashes_simulation():
    engine = Engine()

    def body():
        yield Timeout(engine, 1.0)
        raise TabsError("nobody is watching")

    Process(engine, body())
    with pytest.raises(TabsError, match="nobody is watching"):
        engine.run()


def test_defused_process_failure_is_swallowed():
    engine = Engine()

    def body():
        yield Timeout(engine, 1.0)
        raise TabsError("expected")

    Process(engine, body()).defused = True
    engine.run()  # must not raise


def test_yielding_non_event_fails_process():
    engine = Engine()

    def body():
        yield 42

    process = Process(engine, body())
    process.defused = True
    engine.run()
    with pytest.raises(SimulationError):
        process.result()


def test_interrupt_is_catchable():
    engine = Engine()

    def body():
        try:
            yield Timeout(engine, 100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause)

    process = Process(engine, body())
    engine.run(until=1.0)
    process.interrupt(cause="deadline")
    assert engine.run_until(process) == ("interrupted", "deadline")
    assert engine.now < 100.0


def test_interrupted_wait_does_not_deliver_stale_wakeup():
    engine = Engine()
    wakeups = []

    def body():
        short = Timeout(engine, 2.0, "short")
        try:
            wakeups.append((yield short))
        except Interrupt:
            pass
        wakeups.append((yield Timeout(engine, 5.0, "second")))

    process = Process(engine, body())
    engine.run(until=1.0)
    process.interrupt()
    engine.run_until(process)
    # The 2.0 timeout fired while we were already waiting on the second one;
    # its stale wake-up must not be delivered as the second value.
    assert wakeups == ["second"]


def test_kill_destroys_process_without_resuming():
    engine = Engine()
    cleanups = []

    def body():
        try:
            yield Timeout(engine, 100.0)
        finally:
            cleanups.append("closed")

    process = Process(engine, body())
    engine.run(until=1.0)
    process.kill("node crash")
    engine.run()
    assert cleanups == ["closed"]  # generator.close() ran the finally block
    assert not process.alive
    with pytest.raises(ProcessKilled):
        process.result()


def test_kill_is_idempotent():
    engine = Engine()

    def body():
        yield Timeout(engine, 100.0)

    process = Process(engine, body())
    engine.run(until=1.0)
    process.kill()
    process.kill()
    engine.run()
    assert not process.alive


def test_interrupt_after_death_is_noop():
    engine = Engine()

    def body():
        yield Timeout(engine, 1.0)
        return "done"

    process = Process(engine, body())
    engine.run()
    process.interrupt()
    engine.run()
    assert process.result() == "done"


def test_process_requires_generator():
    engine = Engine()
    with pytest.raises(SimulationError):
        Process(engine, lambda: None)  # type: ignore[arg-type]
