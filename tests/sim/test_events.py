"""Unit tests for events, timeouts, and composite conditions."""

import pytest

from repro.errors import SimulationError, TabsError
from repro.sim import AllOf, AnyOf, Engine, Event, Timeout


def test_event_lifecycle():
    engine = Engine()
    event = Event(engine, "e")
    assert not event.triggered and not event.processed
    event.succeed(42)
    assert event.triggered and not event.processed
    engine.run()
    assert event.processed
    assert event.result() == 42


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = Event(engine).succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_result_before_trigger_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        Event(engine).result()


def test_failed_event_reraises():
    engine = Engine()
    event = Event(engine)
    event.fail(TabsError("boom"))
    engine.run()
    with pytest.raises(TabsError, match="boom"):
        event.result()


def test_fail_requires_exception():
    engine = Engine()
    with pytest.raises(SimulationError):
        Event(engine).fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_processed_still_fires():
    engine = Engine()
    event = Event(engine).succeed("v")
    engine.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.result()))
    engine.run()
    assert seen == ["v"]


def test_remove_callback():
    engine = Engine()
    event = Event(engine)
    seen = []
    callback = lambda e: seen.append(1)  # noqa: E731
    event.add_callback(callback)
    event.remove_callback(callback)
    event.succeed()
    engine.run()
    assert seen == []


def test_timeout_fires_at_deadline():
    engine = Engine()
    timeout = Timeout(engine, 7.5, value="done")
    engine.run()
    assert engine.now == 7.5
    assert timeout.result() == "done"


def test_any_of_yields_first_completion():
    engine = Engine()
    slow = Timeout(engine, 10.0, "slow")
    fast = Timeout(engine, 3.0, "fast")
    condition = AnyOf(engine, [slow, fast])
    engine.run(until=4.0)
    assert condition.result() == (1, "fast")


def test_any_of_propagates_failure():
    engine = Engine()
    bad = Event(engine)
    condition = AnyOf(engine, [bad, Timeout(engine, 100.0)])
    bad.fail(TabsError("bad"))
    engine.run(until=1.0)
    with pytest.raises(TabsError):
        condition.result()


def test_all_of_collects_values_in_order():
    engine = Engine()
    first = Timeout(engine, 9.0, "a")
    second = Timeout(engine, 1.0, "b")
    condition = AllOf(engine, [first, second])
    engine.run()
    assert condition.result() == ["a", "b"]


def test_all_of_empty_succeeds_immediately():
    engine = Engine()
    condition = AllOf(engine, [])
    engine.run()
    assert condition.result() == []


def test_all_of_fails_on_first_child_failure():
    engine = Engine()
    bad = Event(engine)
    condition = AllOf(engine, [bad, Timeout(engine, 5.0)])
    bad.fail(TabsError("child failed"))
    engine.run()
    with pytest.raises(TabsError, match="child failed"):
        condition.result()


def test_run_until_event():
    engine = Engine()
    timeout = Timeout(engine, 4.0, "x")
    assert engine.run_until(timeout) == "x"
    assert engine.now == 4.0


def test_run_until_unreachable_event_is_deadlock():
    engine = Engine()
    event = Event(engine)
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_until(event)
