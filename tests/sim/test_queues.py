"""Edge-case and differential tests for the pluggable event queues.

The engine promises one thing above all: ``heap`` and ``calendar`` pop in
the exact same ``(time, seq)`` order, so every golden digest is identical
under either.  These tests attack the promise where the calendar queue's
structure differs from the heap's -- same-instant FIFO, the overflow
tier, window jumps over idle gaps, and the cursor-commit rule that
``run(until=...)`` relies on (a refused peek must not move the window).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import CalendarQueue, Engine, EngineConfig, Event, HeapQueue

#: both queues, plus a calendar ring so small that ordinary workloads
#: are forced through the overflow tier and window jumps
CONFIGS = [
    pytest.param(EngineConfig.heap(), id="heap"),
    pytest.param(EngineConfig.calendar(), id="calendar"),
    pytest.param(EngineConfig.calendar(ring_buckets=2), id="calendar-tiny"),
]


# -- config validation -------------------------------------------------------


def test_unknown_queue_rejected():
    with pytest.raises(ValueError, match="unknown engine queue"):
        EngineConfig(queue="fibonacci")


def test_ring_buckets_must_be_positive():
    with pytest.raises(ValueError, match="ring_buckets"):
        EngineConfig.calendar(ring_buckets=0)


def test_default_config_is_calendar():
    assert EngineConfig().queue == "calendar"
    assert isinstance(Engine()._queue, CalendarQueue)
    assert isinstance(Engine(EngineConfig.heap())._queue, HeapQueue)


# -- ordering ----------------------------------------------------------------


@pytest.mark.parametrize("config", CONFIGS)
@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.sampled_from([0.0, 1.0, 2.5]),
                       min_size=1, max_size=40))
def test_same_instant_fifo_property(config, delays):
    """Entries scheduled for the same instant run in schedule order --
    whatever mix of instants surrounds them."""
    engine = Engine(config)
    seen = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, seen.append, args=((delay, index),))
    engine.run()
    assert seen == sorted(seen), "pop order broke (time, seq) sorting"


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=5_000.0,
                        allow_nan=False, allow_infinity=False),
              st.booleans()),
    min_size=1, max_size=60),
    ring=st.sampled_from([1, 2, 7, 1024]))
def test_heap_and_calendar_pop_identically(ops, ring):
    """Differential: random workloads execute in the same order under
    both queues, including re-scheduling from inside callbacks."""
    def execute(config):
        engine = Engine(config)
        order = []

        def record(tag, delay):
            order.append((tag, engine.now))
            # Re-schedule from inside the callback: half the entries
            # spawn a follow-up, so pops interleave with pushes.
            if tag % 2 == 0 and len(order) < 3 * len(ops):
                engine.schedule(delay / 3.0, record, args=(tag + 1000, 0.0))

        for tag, (delay, daemon) in enumerate(ops):
            engine.schedule(delay, record, args=(tag, delay),
                            daemon=daemon)
        engine.run()
        return order, engine.now, engine.events_executed

    assert execute(EngineConfig.heap()) == \
        execute(EngineConfig.calendar(ring_buckets=ring))


@pytest.mark.parametrize("config", CONFIGS)
def test_overflow_entries_migrate_back_in_order(config):
    """Entries far beyond any ring horizon come back in time order."""
    engine = Engine(config)
    seen = []
    for delay in [5_000.0, 1.5, 9_999.25, 2_500.0, 0.0, 9_999.75]:
        engine.schedule(delay, seen.append, args=(delay,))
    engine.run()
    assert seen == [0.0, 1.5, 2_500.0, 5_000.0, 9_999.25, 9_999.75]
    assert engine.now == 9_999.75


# -- run(until=...) boundaries ----------------------------------------------


@pytest.mark.parametrize("config", CONFIGS)
def test_event_at_exactly_until_runs(config):
    """``run(until=t)`` is inclusive: an event at exactly ``t`` runs."""
    engine = Engine(config)
    seen = []
    engine.schedule(10.0, seen.append, args=("at",))
    engine.schedule(10.0 + 1e-9, seen.append, args=("after",))
    engine.run(until=10.0)
    assert seen == ["at"]
    assert engine.now == 10.0
    engine.run()
    assert seen == ["at", "after"]


@pytest.mark.parametrize("config", CONFIGS)
def test_refused_peek_does_not_move_the_window(config):
    """The cursor-commit rule: parking the clock before a far-future
    entry, then scheduling *below* it, must pop the near entry first.

    This is the regression test for a speculative-cursor bug: if the
    queue committed its window to the refused front during
    ``run(until=...)``, the later near-time push would land behind the
    window and pop out of order (or never).
    """
    engine = Engine(config)
    seen = []
    engine.schedule(5_000.0, seen.append, args=("far",))
    engine.run(until=100.0)  # refuses the far entry, parks at 100
    assert seen == []
    engine.schedule(1.0, seen.append, args=("near",))  # below the front
    engine.run()
    assert seen == ["near", "far"]
    assert engine.now == 5_000.0


@pytest.mark.parametrize("config", CONFIGS)
def test_run_until_repeatedly_across_idle_gaps(config):
    """Successive bounded runs across empty stretches stay exact."""
    engine = Engine(config)
    seen = []
    for delay in [50.0, 2_048.0, 7_000.5]:
        engine.schedule(delay, seen.append, args=(delay,))
    for until in [10.0, 60.0, 2_048.0, 6_000.0, 8_000.0]:
        engine.run(until=until)
        assert engine.now == until
    assert seen == [50.0, 2_048.0, 7_000.5]


# -- daemon semantics --------------------------------------------------------


@pytest.mark.parametrize("config", CONFIGS)
def test_drain_leaves_daemon_only_remainder(config):
    """``drain`` reports quiescence while daemon ticks are still queued."""
    engine = Engine(config)

    def tick():
        engine.schedule(500.0, tick, daemon=True)

    engine.schedule(500.0, tick, daemon=True)
    engine.schedule(1_200.0, lambda: None)
    assert engine.drain(10_000.0) is True
    assert engine.pending_count() == 0  # daemons excluded
    assert len(engine._queue) == 1  # the next tick still queued


@pytest.mark.parametrize("config", CONFIGS)
def test_run_until_daemon_only_queue_raises_deadlock(config):
    """A waited-on event that can never trigger (only daemon housekeeping
    left) must raise a simulated-deadlock error, not spin forever."""
    engine = Engine(config)

    def tick():
        engine.schedule(5.0, tick, daemon=True)

    engine.schedule(5.0, tick, daemon=True)
    event = Event(engine, "never")
    with pytest.raises(SimulationError, match="daemon"):
        engine.run_until(event)


def test_run_until_empty_queue_raises_deadlock():
    engine = Engine()
    event = Event(engine, "never")
    with pytest.raises(SimulationError, match="drained"):
        engine.run_until(event)


# -- counters stay queue-independent ----------------------------------------


def test_counters_identical_across_queues():
    def churn(config):
        engine = Engine(config)

        def fanout(depth):
            if depth:
                for _ in range(3):
                    engine.schedule(float(depth), fanout, args=(depth - 1,))

        engine.schedule(0.0, fanout, args=(4,))
        engine.schedule(10_000.0, lambda: None, daemon=True)
        engine.run()
        return (engine.events_scheduled, engine.events_executed,
                engine.daemon_scheduled, engine.daemon_executed,
                engine.heap_high_water, engine.now)

    assert churn(EngineConfig.heap()) == churn(EngineConfig.calendar()) \
        == churn(EngineConfig.calendar(ring_buckets=3))
