"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_advances_clock():
    engine = Engine()
    seen = []
    engine.schedule(5.0, lambda: seen.append(engine.now))
    engine.schedule(2.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2.0, 5.0]
    assert engine.now == 5.0


def test_same_time_events_run_in_schedule_order():
    engine = Engine()
    seen = []
    for i in range(10):
        engine.schedule(1.0, lambda i=i: seen.append(i))
    engine.run()
    assert seen == list(range(10))


def test_schedule_now_runs_after_pending_same_time_work():
    engine = Engine()
    seen = []
    engine.schedule(0.0, lambda: seen.append("first"))
    engine.schedule_now(lambda: seen.append("second"))
    engine.run()
    assert seen == ["first", "second"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_run_until_time_stops_clock_exactly():
    engine = Engine()
    seen = []
    engine.schedule(10.0, lambda: seen.append("late"))
    engine.run(until=4.0)
    assert seen == []
    assert engine.now == 4.0
    engine.run()
    assert seen == ["late"]


def test_run_until_past_time_rejected():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run(until=5.0)


def test_callbacks_can_schedule_more_work():
    engine = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, lambda: chain(n + 1))

    engine.schedule(1.0, lambda: chain(0))
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 4.0


def test_schedule_now_is_fifo_among_itself():
    engine = Engine()
    seen = []
    for i in range(5):
        engine.schedule_now(lambda i=i: seen.append(i))
    engine.run()
    assert seen == list(range(5))


def test_callback_scheduling_zero_delay_runs_after_same_time_peers():
    """A zero-delay event created *during* time t runs at t, but after the
    events already queued for t -- the FIFO rule chaos replay relies on."""
    engine = Engine()
    seen = []

    def first():
        seen.append("first")
        engine.schedule(0.0, lambda: seen.append("child"))

    engine.schedule(1.0, first)
    engine.schedule(1.0, lambda: seen.append("second"))
    engine.run()
    assert seen == ["first", "second", "child"]


def test_reentrant_run_rejected():
    """run() from inside a callback must fail loudly, not corrupt time."""
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as error:
            errors.append(error)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1


def test_interleaved_delays_keep_global_order():
    engine = Engine()
    seen = []
    for delay in (3.0, 1.0, 2.0, 1.0, 3.0):
        engine.schedule(delay, lambda d=delay: seen.append(d))
    engine.run()
    assert seen == [1.0, 1.0, 2.0, 3.0, 3.0]
    assert engine.now == 3.0


def test_drain_reports_quiescence():
    engine = Engine()
    engine.schedule(5.0, lambda: None)
    assert engine.drain(10.0) is True
    assert engine.now == 5.0  # clock rests at the last event


def test_drain_gives_up_at_deadline():
    engine = Engine()

    def forever():
        engine.schedule(1.0, forever)

    engine.schedule(1.0, forever)
    assert engine.drain(50.0) is False
    assert engine.pending_count() == 1


def test_drain_negative_budget_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.drain(-1.0)


def test_step_returns_false_when_idle():
    engine = Engine()
    assert engine.step() is False


def test_pending_count():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_count() == 2
    engine.run()
    assert engine.pending_count() == 0


# -- daemon events (background housekeeping) --------------------------------

def test_daemon_events_run_while_real_work_is_pending():
    engine = Engine()
    ticks = []

    def tick():
        ticks.append(engine.now)
        engine.schedule(10.0, tick, daemon=True)

    engine.schedule(10.0, tick, daemon=True)
    engine.schedule(35.0, lambda: None)  # real work keeps the loop going
    engine.run()
    assert ticks == [10.0, 20.0, 30.0]
    assert engine.now == 35.0  # run() stopped despite the pending tick


def test_daemon_events_do_not_block_quiescence():
    engine = Engine()

    def forever():
        engine.schedule(5.0, forever, daemon=True)

    engine.schedule(5.0, forever, daemon=True)
    engine.run()  # would never return if daemons counted as work
    assert engine.now == 0.0


def test_pending_count_excludes_daemons():
    engine = Engine()
    engine.schedule(1.0, lambda: None, daemon=True)
    assert engine.pending_count() == 0
    engine.schedule(2.0, lambda: None)
    assert engine.pending_count() == 1


def test_drain_quiesces_with_daemons_still_queued():
    engine = Engine()

    def forever():
        engine.schedule(5.0, forever, daemon=True)

    engine.schedule(5.0, forever, daemon=True)
    engine.schedule(7.0, lambda: None)
    assert engine.drain(100.0) is True


def test_run_with_until_executes_daemons_up_to_the_deadline():
    engine = Engine()
    ticks = []

    def tick():
        ticks.append(engine.now)
        engine.schedule(10.0, tick, daemon=True)

    engine.schedule(10.0, tick, daemon=True)
    engine.run(until=45.0)
    assert ticks == [10.0, 20.0, 30.0, 40.0]
    assert engine.now == 45.0


def test_run_until_sees_daemon_only_queue_as_deadlock():
    from repro.sim import Event

    engine = Engine()

    def forever():
        engine.schedule(5.0, forever, daemon=True)

    engine.schedule(5.0, forever, daemon=True)
    event = Event(engine, "never")
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_until(event)


def test_daemon_callback_can_create_real_work():
    """A daemon that discovers something real (a suspicion, say) schedules
    non-daemon work, which then keeps the loop alive until done."""
    engine = Engine()
    seen = []
    engine.schedule(1.0, lambda: engine.schedule(
        2.0, lambda: seen.append(engine.now)), daemon=True)
    engine.schedule(5.0, lambda: None)  # real work past the daemon
    engine.run()
    assert seen == [3.0]
