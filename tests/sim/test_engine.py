"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_advances_clock():
    engine = Engine()
    seen = []
    engine.schedule(5.0, lambda: seen.append(engine.now))
    engine.schedule(2.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2.0, 5.0]
    assert engine.now == 5.0


def test_same_time_events_run_in_schedule_order():
    engine = Engine()
    seen = []
    for i in range(10):
        engine.schedule(1.0, lambda i=i: seen.append(i))
    engine.run()
    assert seen == list(range(10))


def test_schedule_now_runs_after_pending_same_time_work():
    engine = Engine()
    seen = []
    engine.schedule(0.0, lambda: seen.append("first"))
    engine.schedule_now(lambda: seen.append("second"))
    engine.run()
    assert seen == ["first", "second"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_run_until_time_stops_clock_exactly():
    engine = Engine()
    seen = []
    engine.schedule(10.0, lambda: seen.append("late"))
    engine.run(until=4.0)
    assert seen == []
    assert engine.now == 4.0
    engine.run()
    assert seen == ["late"]


def test_run_until_past_time_rejected():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run(until=5.0)


def test_callbacks_can_schedule_more_work():
    engine = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, lambda: chain(n + 1))

    engine.schedule(1.0, lambda: chain(0))
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 4.0


def test_step_returns_false_when_idle():
    engine = Engine()
    assert engine.step() is False


def test_pending_count():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_count() == 2
    engine.run()
    assert engine.pending_count() == 0
