"""Unit tests for the RPC runtime (local and inter-node calls)."""

import pytest

from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.errors import ServerError, SessionBroken
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive, ZERO_CPU
from repro.kernel.node import Node
from repro.rpc.stubs import ServiceRef, call, respond, respond_error
from repro.sim import Process
from repro.txn.ids import TransactionID


@pytest.fixture
def world():
    ctx = SimContext(cpu_costs=ZERO_CPU)
    network = Network(ctx)
    nodes = {}
    for name in ("a", "b"):
        node = Node(ctx, name)
        CommunicationManager(node, network)
        nodes[name] = node
    return ctx, network, nodes


def echo_server(node, name="svc"):
    """A server loop that echoes its request body."""
    port = node.create_port(name)

    def loop():
        while True:
            message = yield port.receive()
            if message.body.get("explode"):
                respond_error(message, ServerError("boom"))
            else:
                respond(message, {"echo": message.body.get("x")})

    node.spawn(loop(), name=name, defused=True)
    return port


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def test_local_call_roundtrip_and_cost(world):
    ctx, network, nodes = world
    port = echo_server(nodes["a"])
    ref = ServiceRef("a", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {"x": 42}))
    assert body["echo"] == 42
    assert ctx.meter.count(Primitive.DATA_SERVER_CALL) == 1
    assert ctx.engine.now == MEASURED_1985.time_of(
        Primitive.DATA_SERVER_CALL)


def test_remote_call_roundtrip_and_cost(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {"x": "hi"}))
    assert body["echo"] == "hi"
    assert ctx.meter.count(Primitive.INTER_NODE_DATA_SERVER_CALL) == 1
    assert ctx.meter.count(Primitive.DATA_SERVER_CALL) == 0


def test_remote_call_records_spanning_tree(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    tid = TransactionID("a", 1)
    run(ctx, call(network, nodes["a"], ref, "op", {}, tid=tid))
    assert network.manager("a").spanning_record(tid).children == {"b"}
    assert network.manager("b").spanning_record(tid).parent == "a"


def test_server_exception_marshalled_back(world):
    ctx, network, nodes = world
    port = echo_server(nodes["a"])
    ref = ServiceRef("a", port, epoch=0)
    with pytest.raises(ServerError, match="boom"):
        run(ctx, call(network, nodes["a"], ref, "op", {"explode": True}))


def test_remote_call_to_down_node_fails_fast(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    nodes["b"].crash()
    with pytest.raises(SessionBroken):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_remote_call_times_out_when_server_never_replies(world):
    ctx, network, nodes = world
    silent = nodes["b"].create_port("silent")
    ref = ServiceRef("b", silent, epoch=0)
    with pytest.raises(SessionBroken, match="no response"):
        run(ctx, call(network, nodes["a"], ref, "op", {},
                      timeout_ms=500.0))
    assert ctx.engine.now >= 500.0


def test_stale_epoch_reference_rejected(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    nodes["b"].crash()
    nodes["b"].restart()
    CommunicationManager(nodes["b"], network)
    with pytest.raises(SessionBroken, match="stale"):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_node_crash_mid_call_detected(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)

    def crash_soon():
        from repro.sim import Timeout
        yield Timeout(ctx.engine, 10.0)  # inside the 44.5 ms request leg
        nodes["b"].crash()

    Process(ctx.engine, crash_soon()).defused = True
    with pytest.raises(SessionBroken):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_response_body_is_copied_not_aliased(world):
    ctx, network, nodes = world
    port = nodes["a"].create_port("svc")
    shared = {"x": 1}

    def loop():
        while True:
            message = yield port.receive()
            respond(message, shared)

    nodes["a"].spawn(loop(), defused=True)
    ref = ServiceRef("a", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {}))
    body["x"] = 999
    assert shared["x"] == 1


# -- retry, backoff, and reference re-resolution ----------------------------

def test_transient_unreachability_is_retried_until_it_heals(world):
    """Session establishment fails while partitioned; the capped backoff
    outlives the partition and the call succeeds on a later attempt."""
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    network.partition([["a"], ["b"]])
    ctx.engine.schedule(60.0, network.heal)
    body = run(ctx, call(network, nodes["a"], ref, "op", {"x": 9}))
    assert body["echo"] == 9
    assert ctx.meter.counter("rpc_retries") >= 1


def test_retries_exhausted_surface_the_original_error(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    network.partition([["a"], ["b"]])
    with pytest.raises(SessionBroken):
        run(ctx, call(network, nodes["a"], ref, "op", {}))
    from repro.rpc.stubs import DEFAULT_CALL_RETRIES
    assert ctx.meter.counter("rpc_retries") == DEFAULT_CALL_RETRIES
    assert ctx.engine.now > 0.0  # the backoffs actually waited


def test_backoff_schedule_is_deterministic(world):
    """Same seed, same failure pattern => identical retry instants."""
    def fail_forever(seed):
        ctx = SimContext(cpu_costs=ZERO_CPU, seed=seed)
        network = Network(ctx)
        nodes = {}
        for name in ("a", "b"):
            node = Node(ctx, name)
            CommunicationManager(node, network)
            nodes[name] = node
        port = nodes["b"].create_port("svc")
        ref = ServiceRef("b", port, epoch=0)
        network.partition([["a"], ["b"]])
        with pytest.raises(SessionBroken):
            run(ctx, call(network, nodes["a"], ref, "op", {}))
        return ctx.engine.now

    assert fail_forever(seed=7) == fail_forever(seed=7)
    assert fail_forever(seed=7) != fail_forever(seed=8)


def test_post_dispatch_timeout_is_never_retried(world):
    """At-most-once: once the request may have reached the server, a
    timeout must surface instead of re-sending."""
    ctx, network, nodes = world
    silent = nodes["b"].create_port("silent")
    ref = ServiceRef("b", silent, epoch=0)
    with pytest.raises(SessionBroken, match="no response"):
        run(ctx, call(network, nodes["a"], ref, "op", {},
                      timeout_ms=400.0))
    assert ctx.meter.counter("rpc_retries") == 0


def test_reply_ports_deallocated_after_timeouts(world):
    """Repeated timed-out calls must not grow the caller's port table."""
    ctx, network, nodes = world
    silent = nodes["b"].create_port("silent")
    ref = ServiceRef("b", silent, epoch=0)
    before = len(nodes["a"]._ports)
    for _ in range(3):
        with pytest.raises(SessionBroken):
            run(ctx, call(network, nodes["a"], ref, "op", {},
                          timeout_ms=200.0))
    assert len(nodes["a"]._ports) == before


def test_stale_reference_re_resolved_after_server_restart():
    """A reference minted before the serving node restarted is stale; the
    retry loop re-resolves it through the Name Server by its registered
    name and the call succeeds against the new incarnation."""
    from repro import TabsCluster, TabsConfig
    from repro.servers.int_array import IntegerArrayServer

    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n0")
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("arr"))
    cluster.start()
    app = cluster.application("n0")

    def before(tid):
        ref = yield from app.lookup_one("arr")
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 7}, tid)
        return ref

    stale_ref = cluster.run_transaction("n0", before)
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    def after(tid):
        result = yield from app.call(stale_ref, "get_cell", {"cell": 1},
                                     tid)
        return result["value"]

    assert cluster.run_transaction("n0", after) == 7
    assert cluster.meter.counter("rpc_retries") >= 1
