"""Unit tests for the RPC runtime (local and inter-node calls)."""

import pytest

from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.errors import ServerError, SessionBroken
from repro.kernel.context import SimContext
from repro.kernel.costs import MEASURED_1985, Primitive, ZERO_CPU
from repro.kernel.node import Node
from repro.rpc.stubs import ServiceRef, call, respond, respond_error
from repro.sim import Process
from repro.txn.ids import TransactionID


@pytest.fixture
def world():
    ctx = SimContext(cpu_costs=ZERO_CPU)
    network = Network(ctx)
    nodes = {}
    for name in ("a", "b"):
        node = Node(ctx, name)
        CommunicationManager(node, network)
        nodes[name] = node
    return ctx, network, nodes


def echo_server(node, name="svc"):
    """A server loop that echoes its request body."""
    port = node.create_port(name)

    def loop():
        while True:
            message = yield port.receive()
            if message.body.get("explode"):
                respond_error(message, ServerError("boom"))
            else:
                respond(message, {"echo": message.body.get("x")})

    node.spawn(loop(), name=name, defused=True)
    return port


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


def test_local_call_roundtrip_and_cost(world):
    ctx, network, nodes = world
    port = echo_server(nodes["a"])
    ref = ServiceRef("a", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {"x": 42}))
    assert body["echo"] == 42
    assert ctx.meter.count(Primitive.DATA_SERVER_CALL) == 1
    assert ctx.engine.now == MEASURED_1985.time_of(
        Primitive.DATA_SERVER_CALL)


def test_remote_call_roundtrip_and_cost(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {"x": "hi"}))
    assert body["echo"] == "hi"
    assert ctx.meter.count(Primitive.INTER_NODE_DATA_SERVER_CALL) == 1
    assert ctx.meter.count(Primitive.DATA_SERVER_CALL) == 0


def test_remote_call_records_spanning_tree(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    tid = TransactionID("a", 1)
    run(ctx, call(network, nodes["a"], ref, "op", {}, tid=tid))
    assert network.manager("a").spanning_record(tid).children == {"b"}
    assert network.manager("b").spanning_record(tid).parent == "a"


def test_server_exception_marshalled_back(world):
    ctx, network, nodes = world
    port = echo_server(nodes["a"])
    ref = ServiceRef("a", port, epoch=0)
    with pytest.raises(ServerError, match="boom"):
        run(ctx, call(network, nodes["a"], ref, "op", {"explode": True}))


def test_remote_call_to_down_node_fails_fast(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    nodes["b"].crash()
    with pytest.raises(SessionBroken):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_remote_call_times_out_when_server_never_replies(world):
    ctx, network, nodes = world
    silent = nodes["b"].create_port("silent")
    ref = ServiceRef("b", silent, epoch=0)
    with pytest.raises(SessionBroken, match="no response"):
        run(ctx, call(network, nodes["a"], ref, "op", {},
                      timeout_ms=500.0))
    assert ctx.engine.now >= 500.0


def test_stale_epoch_reference_rejected(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)
    nodes["b"].crash()
    nodes["b"].restart()
    CommunicationManager(nodes["b"], network)
    with pytest.raises(SessionBroken, match="stale"):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_node_crash_mid_call_detected(world):
    ctx, network, nodes = world
    port = echo_server(nodes["b"])
    ref = ServiceRef("b", port, epoch=0)

    def crash_soon():
        from repro.sim import Timeout
        yield Timeout(ctx.engine, 10.0)  # inside the 44.5 ms request leg
        nodes["b"].crash()

    Process(ctx.engine, crash_soon()).defused = True
    with pytest.raises(SessionBroken):
        run(ctx, call(network, nodes["a"], ref, "op", {}))


def test_response_body_is_copied_not_aliased(world):
    ctx, network, nodes = world
    port = nodes["a"].create_port("svc")
    shared = {"x": 1}

    def loop():
        while True:
            message = yield port.receive()
            respond(message, shared)

    nodes["a"].spawn(loop(), defused=True)
    ref = ServiceRef("a", port, epoch=0)
    body = run(ctx, call(network, nodes["a"], ref, "op", {}))
    body["x"] = 999
    assert shared["x"] == 1
