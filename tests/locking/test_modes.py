"""Tests for lock modes and compatibility protocols."""

import pytest

from repro.errors import TabsError
from repro.locking.modes import (
    READ,
    READ_WRITE_PROTOCOL,
    WRITE,
    LockMode,
    make_protocol,
)


def test_read_read_compatible():
    assert READ_WRITE_PROTOCOL.compatible(READ, READ)


@pytest.mark.parametrize("held,requested", [
    (READ, WRITE), (WRITE, READ), (WRITE, WRITE)])
def test_write_conflicts(held, requested):
    assert not READ_WRITE_PROTOCOL.compatible(held, requested)


def test_write_covers_read():
    assert READ_WRITE_PROTOCOL.covers(WRITE, READ)
    assert not READ_WRITE_PROTOCOL.covers(READ, WRITE)
    assert READ_WRITE_PROTOCOL.covers(READ, READ)


def test_unknown_mode_rejected():
    with pytest.raises(TabsError):
        READ_WRITE_PROTOCOL.check_mode(LockMode("ENQUEUE"))


def test_type_specific_protocol():
    """Weak-queue style protocol: concurrent enqueues commute."""
    protocol = make_protocol(
        "weak-queue", ("ENQUEUE", "DEQUEUE"), (("ENQUEUE", "ENQUEUE"),))
    enqueue = LockMode("ENQUEUE")
    dequeue = LockMode("DEQUEUE")
    assert protocol.compatible(enqueue, enqueue)
    assert not protocol.compatible(enqueue, dequeue)
    assert not protocol.compatible(dequeue, dequeue)


def test_protocol_rejects_undeclared_modes_in_pairs():
    with pytest.raises(TabsError):
        make_protocol("broken", ("A",), (("A", "B"),))


def test_asymmetric_protocol():
    """Intention-style protocols need not be symmetric."""
    protocol = make_protocol("asym", ("GIVE", "TAKE"), (("GIVE", "TAKE"),),
                             symmetric=False)
    give, take = LockMode("GIVE"), LockMode("TAKE")
    assert protocol.compatible(give, take)
    assert not protocol.compatible(take, give)
