"""Tests for the optional wait-for-graph deadlock detector."""

import pytest

from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.locking.deadlock import DeadlockDetector
from repro.locking.manager import LockManager
from repro.locking.modes import WRITE
from repro.sim import Process


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST)


def hold(ctx, locks, tid, key):
    ctx.engine.run_until(Process(ctx.engine, locks.lock(tid, key, WRITE)))


def wait_on(ctx, locks, tid, key):
    process = Process(ctx.engine, locks.lock(tid, key, WRITE,
                                             timeout_ms=1e9))
    process.defused = True
    ctx.engine.run(until=ctx.engine.now + 1.0)
    return process


def test_no_cycle_in_simple_wait(ctx):
    locks = LockManager(ctx)
    detector = DeadlockDetector([locks])
    hold(ctx, locks, "t1", "a")
    wait_on(ctx, locks, "t2", "a")
    assert detector.find_cycle() is None
    assert detector.choose_victim() is None


def test_two_party_cycle_detected(ctx):
    locks = LockManager(ctx)
    detector = DeadlockDetector([locks])
    hold(ctx, locks, "t1", "a")
    hold(ctx, locks, "t2", "b")
    wait_on(ctx, locks, "t1", "b")
    wait_on(ctx, locks, "t2", "a")
    cycle = detector.find_cycle()
    assert cycle is not None
    assert set(cycle) == {"t1", "t2"}


def test_victim_is_youngest(ctx):
    locks = LockManager(ctx)
    detector = DeadlockDetector([locks])
    hold(ctx, locks, "t1", "a")
    hold(ctx, locks, "t2", "b")
    wait_on(ctx, locks, "t1", "b")
    wait_on(ctx, locks, "t2", "a")
    assert detector.choose_victim() == "t2"


def test_three_party_cycle_across_managers(ctx):
    """Distributed detection: the cycle spans two servers' lock tables."""
    locks_a, locks_b = LockManager(ctx), LockManager(ctx)
    detector = DeadlockDetector([locks_a, locks_b])
    hold(ctx, locks_a, "t1", "x")
    hold(ctx, locks_b, "t2", "y")
    hold(ctx, locks_a, "t3", "z")
    wait_on(ctx, locks_b, "t1", "y")
    wait_on(ctx, locks_a, "t2", "z")
    wait_on(ctx, locks_a, "t3", "x")
    cycle = detector.find_cycle()
    assert cycle is not None
    assert set(cycle) == {"t1", "t2", "t3"}


def test_breaking_cycle_by_aborting_victim(ctx):
    locks = LockManager(ctx)
    detector = DeadlockDetector([locks])
    hold(ctx, locks, "t1", "a")
    hold(ctx, locks, "t2", "b")
    p1 = wait_on(ctx, locks, "t1", "b")
    wait_on(ctx, locks, "t2", "a")
    victim = detector.choose_victim()
    locks.release_all(victim)
    ctx.engine.run_until(p1)  # t1's wait is granted once t2 is gone
    assert detector.find_cycle() is None


def test_attach_adds_manager(ctx):
    detector = DeadlockDetector()
    locks = LockManager(ctx)
    detector.attach(locks)
    hold(ctx, locks, "t1", "a")
    wait_on(ctx, locks, "t2", "a")
    assert detector.wait_for_graph() == {"t2": {"t1"}}
