"""Tests for the lock manager: grants, queues, time-outs, release."""

import pytest

from repro.errors import LockTimeout, TabsError
from repro.kernel.context import SimContext
from repro.kernel.costs import ZERO_COST
from repro.locking.manager import LockManager
from repro.locking.modes import READ, WRITE
from repro.sim import Process, Timeout


@pytest.fixture
def ctx():
    return SimContext(profile=ZERO_COST)


@pytest.fixture
def locks(ctx):
    return LockManager(ctx)


def run(ctx, gen):
    return ctx.engine.run_until(Process(ctx.engine, gen))


class TestImmediateGrants:
    def test_first_lock_granted(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", READ))
        assert locks.holds("t1", "obj", READ)
        assert locks.is_locked("obj")

    def test_shared_readers(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", READ))
        run(ctx, locks.lock("t2", "obj", READ))
        assert locks.holds("t1", "obj") and locks.holds("t2", "obj")

    def test_conditional_lock_success_and_failure(self, ctx, locks):
        assert locks.try_lock("t1", "obj", WRITE)
        assert not locks.try_lock("t2", "obj", READ)
        assert not locks.holds("t2", "obj")

    def test_reacquire_same_mode_is_noop_grant(self, ctx, locks):
        assert locks.try_lock("t1", "obj", READ)
        assert locks.try_lock("t1", "obj", READ)
        locks.release_all("t1")
        assert not locks.is_locked("obj")

    def test_write_covers_read_request(self, ctx, locks):
        assert locks.try_lock("t1", "obj", WRITE)
        assert locks.try_lock("t1", "obj", READ)

    def test_upgrade_read_to_write_when_sole_holder(self, ctx, locks):
        assert locks.try_lock("t1", "obj", READ)
        assert locks.try_lock("t1", "obj", WRITE)
        assert locks.holds("t1", "obj", WRITE)

    def test_upgrade_blocked_by_other_reader(self, ctx, locks):
        assert locks.try_lock("t1", "obj", READ)
        assert locks.try_lock("t2", "obj", READ)
        assert not locks.try_lock("t1", "obj", WRITE)


class TestWaiting:
    def test_waiter_granted_after_release(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", WRITE))
        order = []

        def waiter():
            yield from locks.lock("t2", "obj", WRITE)
            order.append("granted")

        process = Process(ctx.engine, waiter())
        ctx.engine.run(until=5.0)
        assert order == []
        locks.release_all("t1")
        ctx.engine.run_until(process)
        assert order == ["granted"]
        assert locks.holds("t2", "obj", WRITE)

    def test_fifo_among_waiters(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", WRITE))
        order = []

        def waiter(tid):
            yield from locks.lock(tid, "obj", WRITE)
            order.append(tid)
            locks.release_all(tid)

        p2 = Process(ctx.engine, waiter("t2"))
        ctx.engine.run(until=1.0)
        p3 = Process(ctx.engine, waiter("t3"))
        ctx.engine.run(until=2.0)
        locks.release_all("t1")
        ctx.engine.run_until(p2)
        ctx.engine.run_until(p3)
        assert order == ["t2", "t3"]

    def test_queue_not_jumped_by_conditional_lock(self, ctx, locks):
        """FIFO fairness: a try_lock may not starve a queued writer."""
        run(ctx, locks.lock("t1", "obj", READ))

        def waiter():
            yield from locks.lock("t2", "obj", WRITE)

        Process(ctx.engine, waiter()).defused = True
        ctx.engine.run(until=1.0)
        # t3's READ would be compatible with t1's READ, but t2 is queued.
        assert not locks.try_lock("t3", "obj", READ)

    def test_readers_granted_together(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", WRITE))
        granted = []

        def reader(tid):
            yield from locks.lock(tid, "obj", READ)
            granted.append(tid)

        for tid in ("t2", "t3"):
            Process(ctx.engine, reader(tid)).defused = True
        ctx.engine.run(until=1.0)
        locks.release_all("t1")
        ctx.engine.run(until=2.0)
        assert sorted(granted) == ["t2", "t3"]


class TestTimeouts:
    def test_lock_timeout_raises(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", WRITE))

        def waiter():
            yield from locks.lock("t2", "obj", WRITE, timeout_ms=50.0)

        process = Process(ctx.engine, waiter())
        process.defused = True
        ctx.engine.run()
        with pytest.raises(LockTimeout):
            process.result()
        assert ctx.engine.now == 50.0
        assert locks.timeouts == 1

    def test_timed_out_waiter_leaves_queue(self, ctx, locks):
        run(ctx, locks.lock("t1", "obj", WRITE))

        def impatient():
            yield from locks.lock("t2", "obj", WRITE, timeout_ms=10.0)

        Process(ctx.engine, impatient()).defused = True
        ctx.engine.run()
        locks.release_all("t1")
        # t3 can now take the lock immediately: t2 is gone from the queue.
        assert locks.try_lock("t3", "obj", WRITE)

    def test_deadlock_broken_by_timeout(self, ctx, locks):
        """Two transactions locking a/b in opposite order deadlock; the
        time-out (TABS's resolution policy) breaks it."""
        outcomes = {}

        def t1():
            yield from locks.lock("t1", "a", WRITE)
            yield Timeout(ctx.engine, 1.0)
            try:
                yield from locks.lock("t1", "b", WRITE, timeout_ms=100.0)
                outcomes["t1"] = "ok"
            except LockTimeout:
                outcomes["t1"] = "timeout"
                locks.release_all("t1")

        def t2():
            yield from locks.lock("t2", "b", WRITE)
            yield Timeout(ctx.engine, 1.0)
            try:
                yield from locks.lock("t2", "a", WRITE, timeout_ms=200.0)
                outcomes["t2"] = "ok"
            except LockTimeout:
                outcomes["t2"] = "timeout"
                locks.release_all("t2")

        Process(ctx.engine, t1()).defused = True
        Process(ctx.engine, t2()).defused = True
        ctx.engine.run()
        # t1's shorter time-out fires; its release lets t2 proceed.
        assert outcomes == {"t1": "timeout", "t2": "ok"}


class TestRelease:
    def test_release_all_returns_keys(self, ctx, locks):
        run(ctx, locks.lock("t1", "a", READ))
        run(ctx, locks.lock("t1", "b", WRITE))
        assert sorted(locks.release_all("t1")) == ["a", "b"]
        assert not locks.is_locked("a") and not locks.is_locked("b")

    def test_release_all_of_lockless_txn_is_noop(self, ctx, locks):
        assert locks.release_all("ghost") == []

    def test_early_release_single_lock(self, ctx, locks):
        run(ctx, locks.lock("t1", "a", WRITE))
        locks.release("t1", "a")
        assert not locks.is_locked("a")

    def test_early_release_requires_holding(self, ctx, locks):
        with pytest.raises(TabsError):
            locks.release("t1", "a")

    def test_clear_models_crash(self, ctx, locks):
        run(ctx, locks.lock("t1", "a", WRITE))
        locks.clear()
        assert not locks.is_locked("a")

    def test_held_keys(self, ctx, locks):
        run(ctx, locks.lock("t1", "a", READ))
        run(ctx, locks.lock("t1", "b", READ))
        run(ctx, locks.lock("t2", "c", READ))
        assert sorted(locks.held_keys("t1")) == ["a", "b"]
