"""The parallel experiment runner's core promise: worker-count invariance.

``run_cells`` must return byte-identical results for ``workers=1`` (the
inline reference path), ``workers=2``, and any oversubscribed count --
that is what makes a parallel sweep trustworthy.  These tests prove it on
real multi-process pools (the pool genuinely forks even on one core) and
pin the cell/aggregation plumbing around it.
"""

import json

import pytest

from repro.core.config import CommitConfig, TabsConfig
from repro.errors import TabsError
from repro.perf.runner import (
    Cell,
    chaos_soak_cells,
    debitcredit_sweep_cells,
    result_row,
    run_cell,
    run_cells,
    sweep_payload,
    throughput_sweep_cells,
)

#: short windows: these tests are about plumbing, not steady-state TPS
FAST = {"duration_ms": 1_500.0}


def test_cell_params_are_canonical():
    a = Cell.of("throughput", seed=7, concurrency=2, workload="shared")
    b = Cell.of("throughput", seed=7, workload="shared", concurrency=2)
    assert a == b
    assert a.param_dict() == {"concurrency": 2, "workload": "shared"}


def test_unknown_cell_kind_raises():
    with pytest.raises(TabsError, match="unknown cell kind"):
        run_cell(Cell.of("tachyon_sweep"))


def test_workers_must_be_positive():
    with pytest.raises(TabsError, match="workers"):
        run_cells([Cell.of("throughput", concurrency=1)], workers=0)


def test_run_cells_empty_list():
    assert run_cells([], workers=1) == []
    assert run_cells([], workers=4) == []


def test_throughput_results_identical_for_any_worker_count():
    """The acceptance test: 1, 2, and oversubscribed worker counts
    produce bit-identical aggregated sweeps."""
    cells = throughput_sweep_cells([1, 2, 3], workload="disjoint", **FAST)
    reference = run_cells(cells, workers=1)
    for workers in (2, 8):
        parallel = run_cells(cells, workers=workers)
        assert parallel == reference, f"workers={workers} diverged"
    # ... and the JSON document is byte-identical modulo the recorded
    # worker count (provenance only).
    doc_1 = sweep_payload(cells, reference, workers=1)
    doc_2 = sweep_payload(cells, run_cells(cells, workers=2), workers=1)
    assert json.dumps(doc_1, sort_keys=True) == \
        json.dumps(doc_2, sort_keys=True)
    # results come back in cell order: concurrency 1, 2, 3
    assert [r.concurrency for r in reference] == [1, 2, 3]
    assert all(r.committed > 0 for r in reference)


def test_chaos_soak_cells_identical_across_workers():
    """Chaos cells cross the pickle boundary as plain dicts; the audited
    summary must be a pure function of the seed."""
    cells = chaos_soak_cells([41, 42], transfers=4, episodes=2,
                             plan_ms=2_000.0, run_ms=2_500.0)
    reference = run_cells(cells, workers=1)
    assert run_cells(cells, workers=2) == reference
    assert [row["seed"] for row in reference] == [41, 42]
    for row in reference:
        assert row["ok"], f"soak seed {row['seed']}: {row['violations']}"
        assert row["events_executed"] > 0


def test_debitcredit_cells_carry_the_whole_config():
    """A sweep must not silently drop config knobs on the way into the
    worker: the full frozen ``TabsConfig`` rides inside the cell."""
    config = TabsConfig(seed=77, commit=CommitConfig.grouped())
    cells = debitcredit_sweep_cells([1], config=config, **FAST)
    (result,) = run_cells(cells, workers=1)
    assert result.pipeline == "grouped"
    assert result.clients == 1


def test_result_rows_are_json_able():
    cells = debitcredit_sweep_cells([1], commit=CommitConfig.grouped(),
                                    **FAST)
    (result,) = run_cells(cells, workers=1)
    row = result_row(cells[0], result)
    json.dumps(row)  # must not raise on the CommitConfig param
    assert row["kind"] == "debitcredit"
    assert row["clients"] == 1
    assert row["tps"] == pytest.approx(
        result.committed / (result.duration_ms / 1000.0), abs=0.01)


def test_compare_pipelines_split_is_worker_invariant():
    """The flat fan-out + slice split inside ``compare_pipelines`` must
    reassemble the same per-pipeline dict for any worker count."""
    from repro.perf.throughput import compare_pipelines

    reference = compare_pipelines([1, 2], duration_ms=1_500.0, workers=1)
    parallel = compare_pipelines([1, 2], duration_ms=1_500.0, workers=2)
    assert reference == parallel
    assert set(reference) == {"paper", "grouped"}
    for name, results in reference.items():
        assert [r.concurrency for r in results] == [1, 2]
        assert all(r.pipeline == name for r in results)
