"""Unit tests for the performance model and paper data tables."""

import pytest

from repro.kernel.costs import MEASURED_1985, Primitive
from repro.perf.benchmarks import BENCHMARKS, BENCHMARKS_BY_KEY
from repro.perf.model import (
    COMMIT_PROTOCOL_OF,
    PAPER_TABLE_5_2,
    PAPER_TABLE_5_3,
    PAPER_TABLE_5_4,
    paper_predicted_time,
    predicted_time,
)

P = Primitive


def test_all_fourteen_benchmarks_defined():
    assert len(BENCHMARKS) == 14
    assert len({spec.key for spec in BENCHMARKS}) == 14


def test_paper_tables_cover_every_benchmark():
    for spec in BENCHMARKS:
        assert spec.key in PAPER_TABLE_5_2
        assert spec.key in PAPER_TABLE_5_4
        assert COMMIT_PROTOCOL_OF[spec.key] in PAPER_TABLE_5_3


def test_benchmark_metadata():
    assert BENCHMARKS_BY_KEY["r1"].node_count == 1
    assert BENCHMARKS_BY_KEY["r1r1"].node_count == 2
    assert BENCHMARKS_BY_KEY["w1w1w1"].node_count == 3
    assert not BENCHMARKS_BY_KEY["r5"].is_update
    assert BENCHMARKS_BY_KEY["w1_seq"].is_update


def test_predicted_time_weighted_sum():
    counts = {P.SMALL_MESSAGE: 4, P.DATA_SERVER_CALL: 1}
    expected = 4 * 3.0 + 26.1
    assert predicted_time(counts, MEASURED_1985) == pytest.approx(expected)


def test_paper_predicted_time_r1_matches_table_5_4():
    """The paper's own counts x its own times must land on its own
    predicted column: 1 DSC + 9 small = 26.1 + 27 = 53.1 (~53)."""
    value = paper_predicted_time("r1", MEASURED_1985)
    assert value == pytest.approx(PAPER_TABLE_5_4["r1"].predicted, abs=1.0)


def test_paper_predicted_time_w1_matches_table_5_4():
    value = paper_predicted_time("w1", MEASURED_1985)
    assert value == pytest.approx(PAPER_TABLE_5_4["w1"].predicted, abs=1.0)


def test_paper_predicted_time_none_for_ambiguous_rows():
    """Rows with illegible cells are carried as unknown, not guessed."""
    assert paper_predicted_time("w1_seq", MEASURED_1985) is None
    assert paper_predicted_time("w1w1", MEASURED_1985) is None


def test_paper_table_5_4_orderings():
    """Sanity of the transcription itself: the paper's published numbers
    obey the orderings its prose claims."""
    table = PAPER_TABLE_5_4
    for key, row in table.items():
        assert row.improved_architecture <= row.elapsed, key
        assert row.new_primitive_times < row.improved_architecture, key
        assert row.predicted < row.elapsed, key
    assert table["w1"].elapsed > table["r1"].elapsed
    assert table["r1r1"].elapsed > table["r1"].elapsed
