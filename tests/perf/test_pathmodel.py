"""Tests for the analytic longest-path commit model."""

import pytest

from repro.kernel.costs import MEASURED_1985
from repro.perf.model import PAPER_TABLE_5_3
from repro.perf.pathmodel import TABLE_5_3_PATHS, commit_path


def test_single_node_paths_match_paper_exactly():
    read = TABLE_5_3_PATHS["1_node_read"]
    paper_read = PAPER_TABLE_5_3["1_node_read"]
    assert read.small == paper_read.small
    write = TABLE_5_3_PATHS["1_node_write"]
    paper_write = PAPER_TABLE_5_3["1_node_write"]
    assert write.small == paper_write.small
    assert write.large == paper_write.large
    assert write.stable_writes == paper_write.stable_writes


def test_read_only_datagram_counts_match_paper():
    assert TABLE_5_3_PATHS["2_node_read"].datagrams == 2
    # The famous 2.5: the second prepare overlaps, costing only its
    # sender-side half.
    assert TABLE_5_3_PATHS["3_node_read"].datagrams == 2.5


def test_write_datagram_counts():
    assert TABLE_5_3_PATHS["2_node_write"].datagrams == 4
    # Paper: 5 (one extra half per phase); ours is identical arithmetic.
    assert TABLE_5_3_PATHS["3_node_write"].datagrams == 5


def test_read_only_paths_never_force_the_log():
    for key in ("1_node_read", "2_node_read", "3_node_read"):
        assert TABLE_5_3_PATHS[key].stable_writes == 0


def test_read_path_smalls_close_to_paper():
    """Paper: 11 small on the 2-node read path; our protocol's extra
    txn-done note makes 12."""
    ours = TABLE_5_3_PATHS["2_node_read"].small
    paper = PAPER_TABLE_5_3["2_node_read"].small
    assert abs(ours - paper) <= 1


def test_write_path_smalls_reflect_presumed_abort_forcing():
    """Paper counts 17 small and 1 stable on the 2-node write path; our
    presumed-abort subordinate adds force conversations (+3 pairs of
    force request/done and one more ack hop)."""
    ours = TABLE_5_3_PATHS["2_node_write"]
    assert ours.small == 22
    assert ours.stable_writes == 3


def test_three_node_adds_only_the_overlapped_halves():
    read_two = TABLE_5_3_PATHS["2_node_read"]
    read_three = TABLE_5_3_PATHS["3_node_read"]
    assert read_three.small == read_two.small
    assert read_three.datagrams - read_two.datagrams == 0.5


def test_path_time_under_the_measured_profile():
    """The 1-node write path prices out to the commit portion of the
    paper's prediction: 8x3 + 4.4 + 79 = 107.4 ms."""
    time = TABLE_5_3_PATHS["1_node_write"].time(MEASURED_1985)
    assert time == pytest.approx(8 * 3.0 + 4.4 + 79.0)


def test_node_range_validated():
    with pytest.raises(ValueError):
        commit_path(0, update=True)


def test_fanout_extension_adds_half_datagrams():
    """Beyond the paper's three nodes, each extra child adds 0.5 dg per
    phase (read: one phase; write: two)."""
    assert commit_path(5, update=False).datagrams == 2 + 3 * 0.5
    assert commit_path(5, update=True).datagrams == 4 + 3 * 1.0
