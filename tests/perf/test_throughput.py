"""Unit tests for the throughput harness (kept short; the full sweep runs
in benchmarks/bench_throughput.py)."""

import pytest

from repro.perf.throughput import ThroughputResult, run_throughput


def test_result_rate_arithmetic():
    result = ThroughputResult(concurrency=2, workload="disjoint",
                              duration_ms=10_000.0, committed=25, aborted=0)
    assert result.commits_per_second == 2.5


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_throughput(1, workload="nonsense")


def test_single_app_throughput_matches_latency():
    result = run_throughput(1, "disjoint", duration_ms=5_000.0)
    # One write transaction is ~244 ms, so ~20 commits in 5 seconds.
    assert result.committed == pytest.approx(20, abs=2)
    assert result.aborted == 0


def test_shared_cell_serializes():
    disjoint = run_throughput(3, "disjoint", duration_ms=5_000.0)
    shared = run_throughput(3, "shared", duration_ms=5_000.0)
    assert shared.committed < disjoint.committed


def test_runs_complete_within_duration():
    result = run_throughput(2, "disjoint", duration_ms=2_000.0)
    assert result.duration_ms == 2_000.0
    assert result.committed > 0
