"""Report-boundary rendering: fraction rounding and the metrics tables."""

from repro.kernel.costs import CostMeter, Phase, Primitive, round_count
from repro.obs.metrics import MetricsRegistry
from repro.perf.report import _fmt, render_metrics


class TestRoundCount:
    def test_half_even_at_two_decimals(self):
        # 0.125 is exactly representable in binary: a true tie.
        assert round_count(0.125) == 0.12
        assert round_count(0.375) == 0.38
        assert round_count(0.865) in (0.86, 0.87)  # not a binary tie

    def test_meter_keeps_exact_fractions_internally(self):
        meter = CostMeter()
        meter.phase = Phase.COMMIT
        for _ in range(3):
            meter.record(Primitive.STABLE_STORAGE_WRITE, 79.0, fraction=0.5)
        assert meter.count(Primitive.STABLE_STORAGE_WRITE) == 1.5
        assert round_count(meter.count(Primitive.STABLE_STORAGE_WRITE)) == 1.5


class TestFmt:
    def test_floating_point_dust_renders_as_integer(self):
        assert _fmt(3.0000000000004) == "3"
        assert _fmt(2.9999999999996) == "3"

    def test_true_fractions_keep_two_decimals(self):
        assert _fmt(0.86) == "0.86"
        assert _fmt(1.5) == "1.50"

    def test_none_and_exact_ints(self):
        assert _fmt(None) == "?"
        assert _fmt(4.0) == "4"


class TestRenderMetrics:
    def test_sections_render_sorted(self):
        registry = MetricsRegistry()
        registry.counter("n1", "wal.forces").inc(2)
        registry.counter("n0", "wal.forces").inc(1)
        registry.gauge("n0", "lock.wait_depth").set(3)
        registry.histogram("n0", "wal.force_ms").observe(79.0)
        text = render_metrics(registry)
        assert "Counters" in text
        assert "Gauges" in text
        assert "Latency histograms (ms)" in text
        counter_lines = [line for line in text.splitlines()
                         if "wal.forces" in line]
        assert [line.split()[0] for line in counter_lines] == ["n0", "n1"]

    def test_empty_registry(self):
        assert render_metrics(MetricsRegistry()) == "no metrics recorded"
