"""Ablations of the design choices the paper discusses.

1. **Value versus operation logging** -- the empirical comparison the
   paper's Conclusions promise ("we plan to empirically compare the
   relative merits of value and operation logging"): per-transaction
   latency, log bytes, and crash-recovery work for the same workload
   under each algorithm.
2. **Checkpoint frequency versus recovery effort** -- checkpoints "serve
   to reduce the amount of log data that must be available for crash
   recovery and shorten the time to recover" (Section 2.1.3).
3. **Time-outs versus a deadlock detector** -- TABS resolves deadlock by
   time-outs; other systems run wait-for-graph detectors (Obermarck, R*).
   How long does a deadlocked pair stall under each policy?
4. **Datagram loss versus distributed commit** -- the commit protocol uses
   unacknowledged datagrams; lost prepares abort transactions after the
   vote time-out rather than wedging them.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.locking.deadlock import DeadlockDetector
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer
from repro.sim import Timeout
from repro.wal.records import OperationRecord, ValueUpdateRecord


# ---------------------------------------------------------------------------
# Ablation 1: value versus operation logging
# ---------------------------------------------------------------------------

def run_logging_workload(use_operation_logging: bool, transactions: int = 20):
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    if use_operation_logging:
        cluster.add_server("n1", OperationArrayServer.factory("arr"))
        op, extra = "add_cell", {"delta": 1}
    else:
        cluster.add_server("n1", IntegerArrayServer.factory("arr"))
        op, extra = "set_cell", {"value": 1}
    cluster.start()
    app = cluster.application("n1", measured=True)
    ref = cluster.run_on("n1", app.lookup_one("arr"))
    tabs = cluster.node("n1")

    def one(iteration):
        tid = yield from app.begin_transaction()
        yield from app.call(ref, op, {"cell": (iteration % 50) + 1, **extra},
                            tid)
        yield from app.end_transaction(tid)

    cluster.run_on("n1", one(0))
    started = cluster.engine.now
    for iteration in range(1, transactions + 1):
        cluster.run_on("n1", one(iteration))
    elapsed = (cluster.engine.now - started) / transactions

    durable = tabs.rm.wal.read_forward(tabs.rm.wal.store.truncated_before)
    recovery_records = [r for r in durable
                        if isinstance(r, (ValueUpdateRecord,
                                          OperationRecord))]
    log_bytes = sum(r.size_bytes() for r in recovery_records)

    crash_started = cluster.engine.now
    cluster.crash_node("n1")
    report = cluster.restart_node("n1")
    recovery_ms = cluster.engine.now - crash_started
    return {
        "elapsed_ms": elapsed,
        "log_bytes_per_txn": log_bytes / transactions,
        "recovery_ms": recovery_ms,
        "records_scanned": report.log_records_scanned,
    }


def run_region_workload(use_operation_logging: bool, transactions: int = 10,
                        region_cells: int = 64):
    """Initialise a 64-cell region per transaction.

    Value logging must spool one old/new record per cell; operation
    logging captures the whole multi-page region in a single
    ``fill_range`` record -- the advantage Section 2.1.3 claims.
    """
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    if use_operation_logging:
        cluster.add_server("n1", OperationArrayServer.factory("arr"))
    else:
        cluster.add_server("n1", IntegerArrayServer.factory("arr"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("arr"))
    tabs = cluster.node("n1")

    def one(iteration):
        tid = yield from app.begin_transaction()
        if use_operation_logging:
            yield from app.call(ref, "fill_range",
                                {"start": 1, "count": region_cells,
                                 "value": iteration}, tid)
        else:
            for cell in range(1, region_cells + 1):
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": iteration},
                                    tid)
        yield from app.end_transaction(tid)

    started = cluster.engine.now
    for iteration in range(transactions):
        cluster.run_on("n1", one(iteration))
    elapsed = (cluster.engine.now - started) / transactions
    durable = tabs.rm.wal.read_forward(tabs.rm.wal.store.truncated_before)
    recovery_records = [r for r in durable
                        if isinstance(r, (ValueUpdateRecord,
                                          OperationRecord))]
    return {
        "elapsed_ms": elapsed,
        "records_per_txn": len(recovery_records) / transactions,
        "log_bytes_per_txn": sum(r.size_bytes()
                                 for r in recovery_records) / transactions,
    }


@pytest.fixture(scope="module")
def logging_comparison():
    return {"value": run_logging_workload(False),
            "operation": run_logging_workload(True)}


@pytest.fixture(scope="module")
def region_comparison():
    return {"value": run_region_workload(False),
            "operation": run_region_workload(True)}


def test_render_logging_ablation(logging_comparison, region_comparison,
                                 benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Ablation: value vs operation logging", "=" * 37,
             "single-cell updates:"]
    for name, stats in logging_comparison.items():
        lines.append(f"  {name:10s} elapsed={stats['elapsed_ms']:7.1f} ms  "
                     f"log={stats['log_bytes_per_txn']:7.1f} B/txn  "
                     f"recovery={stats['recovery_ms']:8.1f} ms "
                     f"({stats['records_scanned']} records)")
    lines.append("64-cell (multi-page) region updates:")
    for name, stats in region_comparison.items():
        lines.append(f"  {name:10s} elapsed={stats['elapsed_ms']:7.1f} ms  "
                     f"log={stats['log_bytes_per_txn']:7.1f} B/txn  "
                     f"records={stats['records_per_txn']:5.1f}/txn")
    write_result("ablation_logging.txt", "\n".join(lines))


def test_operation_records_are_smaller(region_comparison):
    """One record per multi-page region versus one per cell: 'operations
    on multi-page objects can be recorded in one log record' and the
    algorithm 'may require less log space'."""
    assert region_comparison["operation"]["records_per_txn"] == 1
    assert region_comparison["value"]["records_per_txn"] == 64
    assert region_comparison["operation"]["log_bytes_per_txn"] < \
        region_comparison["value"]["log_bytes_per_txn"] / 5


def test_region_update_is_much_faster_under_operation_logging(
        region_comparison):
    assert region_comparison["operation"]["elapsed_ms"] < \
        region_comparison["value"]["elapsed_ms"] / 3


def test_forward_latency_is_comparable_for_single_cells(logging_comparison):
    ratio = (logging_comparison["operation"]["elapsed_ms"]
             / logging_comparison["value"]["elapsed_ms"])
    assert 0.8 < ratio < 1.2


# ---------------------------------------------------------------------------
# Ablation 2: checkpoint frequency versus recovery effort
# ---------------------------------------------------------------------------

def run_checkpoint_sweep(checkpoint_every: int | None,
                         transactions: int = 60):
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("arr"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("arr"))
    tabs = cluster.node("n1")

    def one(iteration):
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "set_cell",
                            {"cell": (iteration % 20) + 1, "value": 1}, tid)
        yield from app.end_transaction(tid)

    for iteration in range(transactions):
        cluster.run_on("n1", one(iteration))
        if checkpoint_every and (iteration + 1) % checkpoint_every == 0:
            cluster.run_on("n1", tabs.rm.take_checkpoint({}, flush=True))
    started = cluster.engine.now
    cluster.crash_node("n1")
    report = cluster.restart_node("n1")
    return {"recovery_ms": cluster.engine.now - started,
            "values_restored": report.values_restored}


@pytest.fixture(scope="module")
def checkpoint_sweep():
    return {interval: run_checkpoint_sweep(interval)
            for interval in (None, 30, 10)}


def test_render_checkpoint_ablation(checkpoint_sweep, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Ablation: checkpoint interval vs recovery effort", "=" * 48]
    for interval, stats in checkpoint_sweep.items():
        label = "never" if interval is None else f"every {interval} txns"
        lines.append(f"checkpoint {label:15s} recovery="
                     f"{stats['recovery_ms']:8.1f} ms  objects restored="
                     f"{stats['values_restored']}")
    write_result("ablation_checkpoints.txt", "\n".join(lines))


def test_frequent_checkpoints_shrink_recovery(checkpoint_sweep):
    assert checkpoint_sweep[10]["values_restored"] <= \
        checkpoint_sweep[30]["values_restored"] <= \
        checkpoint_sweep[None]["values_restored"]
    assert checkpoint_sweep[10]["values_restored"] < \
        checkpoint_sweep[None]["values_restored"]


# ---------------------------------------------------------------------------
# Ablation 3: time-outs versus a deadlock detector
# ---------------------------------------------------------------------------

def run_deadlock(policy: str, lock_timeout_ms: float = 10_000.0,
                 detector_period_ms: float = 1_000.0):
    """Two transactions lock cells 1/2 in opposite orders; returns the
    simulated time until both have finished (one aborted, one committed)."""
    cluster = TabsCluster(TabsConfig(lock_timeout_ms=lock_timeout_ms))
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("arr"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("arr"))
    tabs = cluster.node("n1")
    server = tabs.servers["arr"]

    outcomes = []

    def contender(first_cell, second_cell, start_delay_ms):
        # Staggered starts: with identical time-outs both victims of a
        # symmetric deadlock expire together and *both* abort -- a known
        # weakness of the time-out policy the stagger sidesteps, so the
        # ablation measures resolution latency, not the pathology.
        yield Timeout(cluster.engine, start_delay_ms)
        tid = yield from app.begin_transaction()
        try:
            yield from app.call(ref, "set_cell",
                                {"cell": first_cell, "value": 1}, tid)
            yield Timeout(cluster.engine, 500.0)
            yield from app.call(ref, "set_cell",
                                {"cell": second_cell, "value": 1}, tid)
            ok = yield from app.end_transaction(tid)
            outcomes.append("committed" if ok else "aborted")
        except Exception:
            yield from app.abort_transaction(tid)
            outcomes.append("aborted")

    processes = [cluster.spawn_on("n1", contender(1, 2, 0.0)),
                 cluster.spawn_on("n1", contender(2, 1, 300.0))]

    if policy == "detector":
        detector = DeadlockDetector([server.library.locks])

        def watch():
            while any(p.alive for p in processes):
                yield Timeout(cluster.engine, detector_period_ms)
                victim = detector.choose_victim()
                if victim is not None:
                    yield from app.abort_transaction(
                        victim, reason="deadlock detected")

        cluster.spawn_on("n1", watch())

    started = cluster.engine.now
    for process in processes:
        cluster.engine.run_until(process)
    assert sorted(outcomes) == ["aborted", "committed"]
    return cluster.engine.now - started


@pytest.fixture(scope="module")
def deadlock_times():
    return {"timeout": run_deadlock("timeout"),
            "detector": run_deadlock("detector")}


def test_render_deadlock_ablation(deadlock_times, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Ablation: deadlock resolution policy", "=" * 36]
    for policy, stall in deadlock_times.items():
        lines.append(f"{policy:10s} resolved after {stall:8.1f} ms")
    write_result("ablation_deadlock.txt", "\n".join(lines))


def test_detector_resolves_faster_than_timeouts(deadlock_times):
    assert deadlock_times["detector"] < deadlock_times["timeout"] / 2


# ---------------------------------------------------------------------------
# Ablation 4: datagram loss versus distributed commit
# ---------------------------------------------------------------------------

def run_lossy_commits(loss_rate: float, transactions: int = 12):
    cluster = TabsCluster(TabsConfig(datagram_loss_rate=loss_rate))
    for name in ("a", "b"):
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"arr_{name}"))
    cluster.start()
    # Shorten the vote time-out so lost prepares abort quickly.
    cluster.node("a").tm.vote_timeout_ms = 3_000.0
    cluster.node("a").tm.ack_timeout_ms = 1_000.0
    cluster.node("b").tm.ack_timeout_ms = 1_000.0
    app = cluster.application("a")
    local = cluster.run_on("a", app.lookup_one("arr_a"))
    remote = cluster.run_on("a", app.lookup_one("arr_b"))

    committed = 0
    for iteration in range(transactions):
        def body():
            tid = yield from app.begin_transaction()
            yield from app.call(local, "set_cell",
                                {"cell": 1, "value": iteration}, tid)
            yield from app.call(remote, "set_cell",
                                {"cell": 1, "value": iteration}, tid)
            ok = yield from app.end_transaction(tid)
            return ok

        if cluster.run_on("a", body()):
            committed += 1
        cluster.settle(extra_ms=8_000.0)
    return committed / transactions


def test_datagram_loss_costs_commits_but_never_wedges(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reliable = run_lossy_commits(0.0)
    lossy = run_lossy_commits(0.35)
    write_result("ablation_datagram_loss.txt", "\n".join([
        "Ablation: datagram loss vs 2-node commit success", "=" * 48,
        f"loss=0.00  commit rate={reliable:.2f}",
        f"loss=0.35  commit rate={lossy:.2f}",
    ]))
    assert reliable == 1.0
    assert lossy < 1.0  # lost prepares/votes abort some transactions
    assert lossy > 0.0  # but the system keeps making progress
