"""Failure-detection latency versus probe interval.

The heartbeat detector (:mod:`repro.comm.failures`) guarantees a peer
crash is noticed within ``suspicion_timeout + 2 * probe_interval``: a
full unheard window, plus the tick that notices it, plus one tick of
scheduling granularity.  This benchmark measures the latency actually
achieved across crash phases, and the false-suspicion cost of running
the same detector through lossy links (false suspicions are safe -- they
can only abort, never wrongly commit -- but each one aborts every
transaction spanning the suspected node).

Two tables:

1. **Detection latency versus probe interval** -- a three-node cluster,
   one node crashed at eight different phases within a probe period,
   suspicion timeout held at six probe intervals (the default ratio,
   1500 ms / 250 ms).
2. **False suspicions versus partition duration** -- heartbeat probes
   are deliberately exempt from injected per-link datagram faults (they
   consume no seeded rolls and cannot be randomly lost), so loss alone
   never triggers a suspicion; the only sources of false suspicion are
   partitions that heal.  A transient partition shorter than the
   suspicion timeout goes unnoticed; a longer one is suspected, then
   retracted when the first post-heal probe arrives.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig

#: default ratio of suspicion timeout to probe interval (1500 / 250)
TIMEOUT_RATIO = 6
PROBE_INTERVALS_MS = (50.0, 100.0, 250.0, 500.0, 1000.0)
CRASH_PHASES = 8
CRASH_BASE_MS = 5_000.0


def build_cluster(probe_interval_ms: float, suspicion_timeout_ms: float,
                  seed: int = 0) -> tuple[TabsCluster, list]:
    cluster = TabsCluster(TabsConfig(
        seed=seed,
        probe_interval_ms=probe_interval_ms,
        suspicion_timeout_ms=suspicion_timeout_ms))
    events: list = []
    for name in ("n0", "n1", "n2"):
        node = cluster.add_node(name)
        node.fd_observers.append(
            lambda t, local, event, peer: events.append(
                (t, local, event, peer)))
    cluster.start()
    return cluster, events


def measure_detection(probe_interval_ms: float, crash_at_ms: float) -> float:
    """Crash n2, return the worst peer's detection latency (ms)."""
    suspicion = TIMEOUT_RATIO * probe_interval_ms
    cluster, events = build_cluster(probe_interval_ms, suspicion)
    cluster.engine.run(until=crash_at_ms)
    cluster.crash_node("n2")
    bound = suspicion + 2 * probe_interval_ms
    cluster.engine.run(until=crash_at_ms + bound + probe_interval_ms)
    detected = {local: t for t, local, event, peer in events
                if event == "suspect" and peer == "n2"}
    assert set(detected) == {"n0", "n1"}, \
        f"peers failed to detect the crash: {sorted(detected)}"
    return max(t - crash_at_ms for t in detected.values())


@pytest.mark.slow
def test_detection_latency_vs_probe_interval():
    lines = [
        "Failure-detection latency versus probe interval",
        "(3 nodes; n2 crashed at 8 phases within one probe period;",
        " suspicion timeout = 6 x probe interval, the default ratio)",
        "",
        f"{'probe (ms)':>10} {'suspicion (ms)':>14} {'bound (ms)':>10} "
        f"{'min (ms)':>9} {'mean (ms)':>9} {'max (ms)':>9}",
    ]
    for interval in PROBE_INTERVALS_MS:
        suspicion = TIMEOUT_RATIO * interval
        bound = suspicion + 2 * interval
        latencies = []
        for phase in range(CRASH_PHASES):
            crash_at = CRASH_BASE_MS + phase * interval / CRASH_PHASES
            latency = measure_detection(interval, crash_at)
            assert latency <= bound, (
                f"latency {latency:.1f} ms exceeds the documented bound "
                f"{bound:.1f} ms at interval {interval} ms")
            latencies.append(latency)
        lines.append(
            f"{interval:>10.0f} {suspicion:>14.0f} {bound:>10.0f} "
            f"{min(latencies):>9.1f} "
            f"{sum(latencies) / len(latencies):>9.1f} "
            f"{max(latencies):>9.1f}")
    write_result("failure_detection_latency.txt", "\n".join(lines))


@pytest.mark.slow
def test_false_suspicions_vs_partition_duration():
    lines = [
        "False suspicions versus transient-partition duration",
        "(3 nodes, no crashes; {n0} | {n1, n2} partitioned at t=5 s for",
        " the given duration, then healed; default detector: probe",
        " 250 ms, suspicion 1500 ms.  Four directed pairs cross the cut,",
        " so a noticed partition yields 4 suspicions, each retracted by",
        " the first post-heal probe)",
        "",
        f"{'partition (ms)':>14} {'false suspicions':>16} "
        f"{'retracted':>9}",
    ]
    for duration in (500.0, 1_000.0, 1_500.0, 2_000.0, 3_000.0, 5_000.0):
        cluster, events = build_cluster(250.0, 1_500.0, seed=7)
        cluster.engine.run(until=5_000.0)
        cluster.partition(["n0"], ["n1", "n2"])
        cluster.engine.run(until=5_000.0 + duration)
        cluster.heal_partition()
        cluster.engine.run(until=5_000.0 + duration + 10_000.0)
        false = sum(1 for _, _, event, _ in events if event == "suspect")
        recovered = sum(1 for _, _, event, _ in events
                        if event == "recovered")
        assert false == recovered, \
            "every partition-induced suspicion must be retracted"
        assert cluster.meter.counter("false_suspicions") == false
        lines.append(f"{duration:>14.0f} {false:>16d} {recovered:>9d}")
    write_result("failure_detection_partitions.txt", "\n".join(lines))
