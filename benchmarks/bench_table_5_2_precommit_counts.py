"""Table 5-2: pre-commit primitive counts for the fourteen benchmarks.

The counts are *measured* by instrumentation: every primitive executed
before ``EndTransaction`` is attributed to the pre-commit phase.  The
paper's published counts are printed alongside; the local no-paging rows
are reproduced exactly, the paging and multi-node rows to within the
documented protocol differences (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import write_result
from repro.kernel.costs import Primitive
from repro.perf.model import PAPER_TABLE_5_2
from repro.perf.report import render_table_5_2

P = Primitive

#: rows whose pre-commit counts must match the paper exactly
EXACT_KEYS = ("r1", "r5", "w1", "w5", "r1_seq", "r1r5")


def test_render_table_5_2(measured_results, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    write_result("table_5_2.txt", render_table_5_2(measured_results))


@pytest.mark.parametrize("key", EXACT_KEYS)
def test_exact_rows_match_paper(measured_results, key):
    result = next(r for r in measured_results if r.spec.key == key)
    paper = PAPER_TABLE_5_2[key]
    counts = result.precommit_counts
    assert counts.get(P.DATA_SERVER_CALL, 0) == paper.ds_calls
    assert counts.get(P.INTER_NODE_DATA_SERVER_CALL, 0) == \
        paper.remote_ds_calls
    assert counts.get(P.LARGE_MESSAGE, 0) == paper.large
    if key in ("r1", "r5", "w1", "w5"):
        assert counts.get(P.SMALL_MESSAGE, 0) == paper.small
    else:
        # Multi-node/paging rows: within one message of the paper's count.
        assert counts.get(P.SMALL_MESSAGE, 0) == \
            pytest.approx(paper.small, abs=1.0)


def test_random_paging_page_io_rate(measured_results):
    """The paper measured 0.86 page I/Os per random-read transaction."""
    result = next(r for r in measured_results if r.spec.key == "r1_rand")
    rate = result.precommit_counts.get(P.RANDOM_PAGED_IO, 0)
    assert rate == pytest.approx(0.86, abs=0.15)


def test_join_happens_once_per_server(measured_results):
    """Five reads cost five data-server calls but the same four small
    messages as one read: the first-operation notice is sent once."""
    one = next(r for r in measured_results if r.spec.key == "r1")
    five = next(r for r in measured_results if r.spec.key == "r5")
    assert one.precommit_counts[P.SMALL_MESSAGE] == \
        five.precommit_counts[P.SMALL_MESSAGE]
    assert five.precommit_counts[P.DATA_SERVER_CALL] == 5


def test_each_write_spools_one_large_message(measured_results):
    for key, writes in (("w1", 1), ("w5", 5)):
        result = next(r for r in measured_results if r.spec.key == key)
        assert result.precommit_counts[P.LARGE_MESSAGE] == writes
