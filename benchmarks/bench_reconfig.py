"""Commit continuity through a live shard migration -- the reconfig bench.

Two branches sharded over two nodes with rf=2, driven by steady
DebitCredit traffic while a third node joins the *running* cluster and
one account shard is migrated onto it as a crash-safe transaction
(durable intent, extend epoch, chunked copy behind the read barrier,
commit-sequence bump, shrink epoch).  The claim under test is this PR's
headline: reconfiguration is an online operation -- traffic keeps
committing while the shard moves, with the disruption bounded to the
epoch-bump abort windows and the copy's fan-in.  The payload therefore
records, besides committed TPS, the **maximum commit gap**: the longest
stretch of simulated time with no commit anywhere in the cluster.

``python benchmarks/bench_reconfig.py --json`` regenerates
``BENCH_reconfig.json`` at the repository root; ``--smoke`` runs a
shortened variant whose gate also checks TPS against the committed
baseline (CI uploads the smoke payload as an artifact).
"""

import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script, not under pytest
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT))

import pytest

from benchmarks.conftest import REPO_ROOT, baseline_main, write_result
from repro.chaos import ChaosController, FaultPlan
from repro.core.cluster import TabsCluster
from repro.core.config import (ReconfigConfig, ReplicationConfig, TabsConfig,
                               WorkloadConfig)
from repro.reconfig import ReconfigManager
from repro.workloads import DebitCreditWorkload

#: two branches on two nodes; 70% of account traffic is remote, so most
#: transactions exercise cross-node write fan-out
BENCH_WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=200,
                                tellers_per_branch=4, locality=0.3)
REPLICATION = ReplicationConfig.available_copies()
RECONFIG = ReconfigConfig.online()
SEED = 1985
SPACING_MS = 300.0
FULL_DURATION_MS = 24_000.0
SMOKE_DURATION_MS = 18_000.0
#: the migration starts this far into the run -- late enough that the
#: steady-state TPS is established, early enough that the copy, the
#: barrier drop, and both epoch bumps land well inside the window
MIGRATE_AT_FRACTION = 0.35
#: no commit gap may exceed this fraction of the run: the epoch-bump
#: abort windows and the copy fan-in bound it well below a full outage
MAX_GAP_FRACTION = 0.4
#: smoke TPS may drift this much from the committed full-run baseline
SMOKE_TPS_TOLERANCE = 0.5
BASELINE_PATH = REPO_ROOT / "BENCH_reconfig.json"


def run_reconfig(duration_ms: float) -> dict:
    config = TabsConfig(seed=SEED, workload=BENCH_WORKLOAD,
                        replication=REPLICATION, reconfig=RECONFIG)
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    manager = ReconfigManager(cluster, "bank0")
    # No faults: the controller rides along purely for its commit trace.
    controller = ChaosController(cluster, FaultPlan(()), seed=SEED)
    controller.install()
    manager.join("bank2")  # live join; hosts nothing until the migration
    driver = DebitCreditWorkload(cluster, topology, controller=controller,
                                 seed=SEED)
    offered = int(duration_ms / SPACING_MS)
    driver.schedule_traffic(txns=offered, spacing_ms=SPACING_MS)
    keyspace = topology.account_server(1)
    holder = {}
    cluster.engine.schedule(
        MIGRATE_AT_FRACTION * duration_ms,
        lambda: holder.update(
            c=manager.spawn_migration(keyspace, "bank0", "bank2")))
    driver.run(duration_ms)
    quiet = driver.finale()
    report = driver.check_invariants(quiet=quiet)

    commit_times = sorted(event[0] for event in controller.trace
                          if event[1] == "txn" and event[4] == "committed")
    points = [0.0] + commit_times + [duration_ms]
    max_gap = max(later - earlier
                  for earlier, later in zip(points, points[1:]))

    def counter_sum(name: str) -> int:
        return sum(counter.value for (node, metric), counter
                   in cluster.metrics.counters().items() if metric == name)

    migration_events = [(round(t, 1), phase) for t, phase, *_
                        in manager.events]
    outcomes = driver.stats.outcomes()
    return {
        "duration_ms": duration_ms,
        "migrate_at_ms": MIGRATE_AT_FRACTION * duration_ms,
        "keyspace": keyspace,
        "offered": offered,
        "committed": outcomes.get("committed", 0),
        "aborted": outcomes.get("aborted", 0),
        "skipped": outcomes.get("skipped", 0),
        "unknown": outcomes.get("unknown", 0),
        "tps": round(outcomes.get("committed", 0) / (duration_ms / 1000.0),
                     3),
        "max_commit_gap_ms": round(max_gap, 3),
        "migration_committed": holder["c"].result is True,
        "migration_events": migration_events,
        "placement_epoch": cluster.placement_epoch,
        "final_replicas": list(cluster.placement.replicas(keyspace)),
        "copy_chunks": sum(1 for _, phase in migration_events
                           if phase == "copy"),
        "epoch_installs": counter_sum("reconfig.epoch_installs"),
        "validation_aborts": counter_sum("replication.validation_abort"),
        "catchup_pages": counter_sum("replica.catchup_pages"),
        "audits_ok": report.ok,
        "violations": [v.kind for v in report.violations],
    }


@pytest.fixture(scope="module")
def reconfig_result():
    return run_reconfig(FULL_DURATION_MS)


def test_render_reconfig(reconfig_result, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    r = reconfig_result
    lines = ["DebitCredit through a live shard migration (join + move, "
             "rf=2)", "=" * 72,
             f"offered {r['offered']}  committed {r['committed']}  "
             f"tps {r['tps']}",
             f"max commit gap {r['max_commit_gap_ms']} ms of "
             f"{r['duration_ms']} ms",
             f"migration committed: {r['migration_committed']}  "
             f"epoch {r['placement_epoch']}  "
             f"copy chunks {r['copy_chunks']}",
             f"audits ok: {r['audits_ok']}"]
    write_result("reconfig.txt", "\n".join(lines))


def test_migration_lands_and_commits_keep_flowing(reconfig_result):
    """The acceptance bar: the shard moves while transactions commit."""
    r = reconfig_result
    assert r["migration_committed"] is True
    assert r["final_replicas"][-1] == "bank2"
    assert r["committed"] > 0


def test_no_full_outage_window(reconfig_result):
    r = reconfig_result
    assert r["max_commit_gap_ms"] < MAX_GAP_FRACTION * r["duration_ms"], \
        f"commit gap {r['max_commit_gap_ms']} ms is an outage"


def test_audits_pass_after_the_move(reconfig_result):
    assert reconfig_result["audits_ok"], reconfig_result["violations"]


def payload_from(result: dict) -> dict:
    return {
        "workload": {
            "schema": BENCH_WORKLOAD.schema,
            "branches": BENCH_WORKLOAD.branches,
            "branches_per_node": BENCH_WORKLOAD.branches_per_node,
            "tellers_per_branch": BENCH_WORKLOAD.tellers_per_branch,
            "accounts_per_branch": BENCH_WORKLOAD.accounts_per_branch,
            "locality": BENCH_WORKLOAD.locality,
        },
        "replication": {
            "replication_factor": REPLICATION.replication_factor,
            "prepared_inquiry_ms": REPLICATION.prepared_inquiry_ms,
            "catchup_retry_ms": REPLICATION.catchup_retry_ms,
        },
        "reconfig": {
            "copy_retry_ms": RECONFIG.copy_retry_ms,
            "copy_max_retries": RECONFIG.copy_max_retries,
        },
        "seed": SEED,
        "spacing_ms": SPACING_MS,
        **result,
    }


def baseline_payload(duration_ms: float = FULL_DURATION_MS) -> dict:
    """The committed baseline (timestamp-free: deterministic simulation,
    so regenerating an unchanged tree is a no-op diff)."""
    return payload_from(run_reconfig(duration_ms))


def test_baseline_json_matches_current_tree(reconfig_result):
    """BENCH_reconfig.json is regenerated, not hand-edited."""
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed == payload_from(reconfig_result)


def smoke_check(payload: dict) -> tuple[bool, str]:
    """Gate the shortened CI run against the committed full baseline."""
    problems = []
    if not payload["migration_committed"]:
        problems.append("the live migration did not commit")
    if payload["committed"] <= 0:
        problems.append("no transaction committed through the migration")
    if not payload["audits_ok"]:
        problems.append(f"audits failed: {payload['violations']}")
    gap_limit = MAX_GAP_FRACTION * payload["duration_ms"]
    if payload["max_commit_gap_ms"] >= gap_limit:
        problems.append(
            f"commit gap {payload['max_commit_gap_ms']} ms exceeds "
            f"{gap_limit} ms: that is an outage window")
    committed = json.loads(BASELINE_PATH.read_text())
    if committed["tps"] > 0:
        drift = abs(payload["tps"] - committed["tps"]) / committed["tps"]
        if drift > SMOKE_TPS_TOLERANCE:
            problems.append(
                f"tps drifted {drift:.0%} from baseline "
                f"({payload['tps']} vs {committed['tps']})")
    summary = (f"tps={payload['tps']}, "
               f"max_gap={payload['max_commit_gap_ms']}ms, "
               f"migration_committed={payload['migration_committed']}")
    if problems:
        summary += "; " + "; ".join(problems)
    return not problems, summary


def main(argv: list[str] | None = None) -> int:
    return baseline_main(
        argv,
        description="Regenerate the online-reconfiguration baseline.",
        baseline_path=BASELINE_PATH,
        payload_fn=baseline_payload,
        full_duration_ms=FULL_DURATION_MS,
        smoke_duration_ms=SMOKE_DURATION_MS,
        smoke_check=smoke_check)


if __name__ == "__main__":
    raise SystemExit(main())
