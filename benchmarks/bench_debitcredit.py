"""DebitCredit TPS under hot-row contention -- the gated workload bench.

Eight branches co-hosted on one bank node, closed-loop clients with 90/10
branch locality: every transaction updates its branch's balance row (the
hot row, taken last and held through commit), so per-branch commits are
serialized by two-phase locking while co-hosted branches commit
concurrently against one serial log device.  That is the regime the
``grouped`` commit pipeline targets: one physical force completes every
branch's commit queued during the previous force's flight.

``python benchmarks/bench_debitcredit.py --json`` regenerates
``BENCH_debitcredit.json`` at the repository root; ``--smoke`` runs a
shortened variant whose gate also checks TPS against the committed
baseline (CI uploads the smoke payload as an artifact).
"""

import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script, not under pytest
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT))

import pytest

from benchmarks.conftest import REPO_ROOT, baseline_main, write_result
from repro.core.config import WorkloadConfig
from repro.perf.debitcredit import compare_debitcredit_pipelines

#: eight branches on one node: the hot row serializes each branch's
#: commits, the shared serial log device sees eight concurrent streams
BENCH_WORKLOAD = WorkloadConfig(branches=8, branches_per_node=8,
                                accounts_per_branch=1_000)
#: 8 clients = one per branch (device-bound); 16 = two per branch
#: (device-bound *and* hot-row-bound)
CLIENT_COUNTS = (1, 8, 16)
FULL_DURATION_MS = 8_000.0
SMOKE_DURATION_MS = 3_000.0
#: smoke TPS may drift this much from the committed full-run baseline
#: (shorter window -> coarser commit quantization)
SMOKE_TPS_TOLERANCE = 0.25
BASELINE_PATH = REPO_ROOT / "BENCH_debitcredit.json"


@pytest.fixture(scope="module")
def pipeline_results():
    return compare_debitcredit_pipelines(
        list(CLIENT_COUNTS), duration_ms=FULL_DURATION_MS,
        workload=BENCH_WORKLOAD)


def test_render_debitcredit(pipeline_results, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["DebitCredit, 8 hot branches, one serial log device "
             "(TPS, forces/commit, latency mean/p50/p95/p99 ms)", "=" * 72,
             f"{'clients':>8s} {'paper':>38s} {'grouped':>38s}"]
    for index, clients in enumerate(CLIENT_COUNTS):
        paper = pipeline_results["paper"][index]
        grouped = pipeline_results["grouped"][index]
        lines.append(
            f"{clients:>8d} "
            f"{paper.tps:>8.2f} {paper.forces_per_commit:>5.2f} "
            f"{paper.latency.mean:>7.1f} {paper.latency.p50:>5.1f} "
            f"{paper.latency.p95:>5.1f} {paper.latency.p99:>5.1f} "
            f"{grouped.tps:>8.2f} {grouped.forces_per_commit:>5.2f} "
            f"{grouped.latency.mean:>7.1f} {grouped.latency.p50:>5.1f} "
            f"{grouped.latency.p95:>5.1f} {grouped.latency.p99:>5.1f}")
    write_result("debitcredit.txt", "\n".join(lines))


def test_grouped_beats_paper_at_8_clients(pipeline_results):
    """The acceptance bar: grouped TPS > paper TPS at >= 8 clients."""
    for index, clients in enumerate(CLIENT_COUNTS):
        if clients < 8:
            continue
        paper = pipeline_results["paper"][index]
        grouped = pipeline_results["grouped"][index]
        assert grouped.tps > paper.tps, \
            f"grouped {grouped.tps} <= paper {paper.tps} at {clients} clients"


def test_hot_row_saturates_paper_pipeline(pipeline_results):
    """Doubling clients past device saturation buys the paper pipeline
    nothing: per-record forces cap the node however many branches queue."""
    paper_8 = pipeline_results["paper"][1]
    paper_16 = pipeline_results["paper"][2]
    assert paper_16.tps < 1.15 * paper_8.tps


def test_grouped_amortizes_forces_under_contention(pipeline_results):
    grouped_16 = pipeline_results["grouped"][2]
    assert grouped_16.forces_per_commit < 1.0
    assert all(r.forces_per_commit >= 1.0
               for r in pipeline_results["paper"])


def test_workload_is_deadlock_free(pipeline_results):
    """Global lock order (accounts < tellers < branches < history) means
    contention costs waiting, never aborts."""
    for rows in pipeline_results.values():
        assert all(r.aborted == 0 for r in rows)


def test_latency_histogram_covers_every_commit(pipeline_results):
    for rows in pipeline_results.values():
        for r in rows:
            assert r.latency.count == r.committed
            if r.committed:
                assert r.latency.min > 0.0


def payload_from(results: dict, duration_ms: float) -> dict:
    def row(r):
        return {"clients": r.clients,
                "committed": r.committed,
                "aborted": r.aborted,
                "remote_committed": r.remote_committed,
                "tps": round(r.tps, 3),
                "abort_rate": round(r.abort_rate, 4),
                "forces": r.forces,
                "forces_per_commit": round(r.forces_per_commit, 4),
                "latency_mean_ms": round(r.latency.mean, 3),
                "latency_max_ms": round(r.latency.max or 0.0, 3)}

    paper_8 = results["paper"][1]
    grouped_8 = results["grouped"][1]
    paper_16 = results["paper"][2]
    grouped_16 = results["grouped"][2]
    return {
        "workload": {
            "schema": BENCH_WORKLOAD.schema,
            "branches": BENCH_WORKLOAD.branches,
            "branches_per_node": BENCH_WORKLOAD.branches_per_node,
            "tellers_per_branch": BENCH_WORKLOAD.tellers_per_branch,
            "accounts_per_branch": BENCH_WORKLOAD.accounts_per_branch,
            "locality": BENCH_WORKLOAD.locality,
        },
        "duration_ms": duration_ms,
        "client_counts": list(CLIENT_COUNTS),
        "pipelines": {name: [row(r) for r in rows]
                      for name, rows in results.items()},
        "speedup_at_8_clients": round(grouped_8.tps / paper_8.tps, 3),
        "speedup_at_16_clients": round(grouped_16.tps / paper_16.tps, 3),
    }


def baseline_payload(duration_ms: float = FULL_DURATION_MS) -> dict:
    """The committed baseline (timestamp-free: deterministic simulation,
    so regenerating an unchanged tree is a no-op diff)."""
    results = compare_debitcredit_pipelines(
        list(CLIENT_COUNTS), duration_ms=duration_ms,
        workload=BENCH_WORKLOAD)
    return payload_from(results, duration_ms)


def test_baseline_json_matches_current_tree(pipeline_results):
    """BENCH_debitcredit.json is regenerated, not hand-edited."""
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed == payload_from(pipeline_results, FULL_DURATION_MS)


def smoke_check(payload: dict) -> tuple[bool, str]:
    """Gate the shortened CI run against the committed full baseline."""
    problems = []
    if payload["speedup_at_8_clients"] <= 1.0:
        problems.append(
            f"grouped did not beat paper at 8 clients "
            f"(speedup {payload['speedup_at_8_clients']}x)")
    if payload["pipelines"]["grouped"][-1]["forces_per_commit"] >= 1.0:
        problems.append("grouped never amortized a force at 16 clients")
    committed = json.loads(BASELINE_PATH.read_text())
    for name in ("paper", "grouped"):
        for got, want in zip(payload["pipelines"][name],
                             committed["pipelines"][name]):
            if want["tps"] == 0:
                continue
            drift = abs(got["tps"] - want["tps"]) / want["tps"]
            if drift > SMOKE_TPS_TOLERANCE:
                problems.append(
                    f"{name} tps at {got['clients']} clients drifted "
                    f"{drift:.0%} from baseline "
                    f"({got['tps']} vs {want['tps']})")
    summary = (f"speedup@8={payload['speedup_at_8_clients']}x, "
               f"speedup@16={payload['speedup_at_16_clients']}x")
    if problems:
        summary += "; " + "; ".join(problems)
    return not problems, summary


def main(argv: list[str] | None = None) -> int:
    return baseline_main(
        argv,
        description="Regenerate the DebitCredit TPS baseline.",
        baseline_path=BASELINE_PATH,
        payload_fn=baseline_payload,
        full_duration_ms=FULL_DURATION_MS,
        smoke_duration_ms=SMOKE_DURATION_MS,
        smoke_check=smoke_check)


if __name__ == "__main__":
    raise SystemExit(main())
