"""Table 5-4: benchmark times under the three configurations.

Columns, as in the paper:

- **System Time Predicted by Primitives**: counts x Table 5-1 times.
- **Measured Elapsed Time**: simulated no-load latency, separate TABS
  processes, measured primitive times.
- **Improved TABS Architecture**: TM/RM merged into the kernel.
- **New Primitive Times**: the merged architecture on Table 5-5's numbers.

Absolute agreement is strongest for the single-node rows (within a few
percent); the multi-node rows agree in shape (who is slower, by what
factor) -- see EXPERIMENTS.md for the full accounting.
"""

import pytest

from benchmarks.conftest import write_result
from repro.perf.model import PAPER_TABLE_5_4
from repro.perf.report import render_table_5_4

#: maximum relative deviation from the paper's measured elapsed time
ELAPSED_TOLERANCE = {
    # single-node rows: tight
    "r1": 0.05, "r5": 0.05, "w1": 0.05, "w5": 0.10,
    "r1_seq": 0.05, "r1_rand": 0.05,
    # paging-write and multi-node rows: the protocol reconstruction
    # differs in detail from TABS's (documented in EXPERIMENTS.md)
    "w1_seq": 0.25, "r1r1": 0.25, "r1r5": 0.15, "r1r1_seq": 0.25,
    "w1w1": 0.25, "w1w1_seq": 0.25, "r1r1r1": 0.30, "w1w1w1": 0.30,
}


def row_for(rows, key):
    return next(r for r in rows if r.spec.key == key)


def test_render_table_5_4(table_5_4_rows, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    write_result("table_5_4.txt", render_table_5_4(table_5_4_rows))


@pytest.mark.parametrize("key,tolerance", sorted(ELAPSED_TOLERANCE.items()))
def test_elapsed_time_tracks_paper(table_5_4_rows, key, tolerance):
    row = row_for(table_5_4_rows, key)
    paper = PAPER_TABLE_5_4[key].elapsed
    assert row.elapsed_ms == pytest.approx(paper, rel=tolerance), (
        f"{key}: {row.elapsed_ms:.0f} ms vs paper {paper} ms")


def test_predicted_plus_process_time_approximates_elapsed(table_5_4_rows):
    """The paper's own single-node validation: Predicted System Time plus
    Measured TABS Process Time approximately yields Measured Elapsed."""
    for key in ("r1", "r5", "w1", "r1_seq"):
        row = row_for(table_5_4_rows, key)
        reconstructed = row.predicted_ms + row.tabs_process_ms
        assert reconstructed == pytest.approx(row.elapsed_ms, rel=0.20), key


def test_writes_cost_more_than_reads(table_5_4_rows):
    assert row_for(table_5_4_rows, "w1").elapsed_ms > \
        row_for(table_5_4_rows, "r1").elapsed_ms
    assert row_for(table_5_4_rows, "w1w1").elapsed_ms > \
        row_for(table_5_4_rows, "r1r1").elapsed_ms


def test_remote_operations_cost_more_than_local(table_5_4_rows):
    assert row_for(table_5_4_rows, "r1r1").elapsed_ms > \
        2 * row_for(table_5_4_rows, "r1").elapsed_ms
    assert row_for(table_5_4_rows, "w1w1").elapsed_ms > \
        2 * row_for(table_5_4_rows, "w1").elapsed_ms


def test_paging_adds_io_latency(table_5_4_rows):
    assert row_for(table_5_4_rows, "r1_seq").elapsed_ms > \
        row_for(table_5_4_rows, "r1").elapsed_ms
    assert row_for(table_5_4_rows, "r1_rand").elapsed_ms > \
        row_for(table_5_4_rows, "r1_seq").elapsed_ms


def test_improved_architecture_is_faster(table_5_4_rows):
    for row in table_5_4_rows:
        assert row.improved_ms <= row.elapsed_ms + 1e-6, row.spec.key


def test_new_primitives_give_the_biggest_win(table_5_4_rows):
    for row in table_5_4_rows:
        assert row.new_primitives_ms < row.improved_ms, row.spec.key
    # The paper projects 110 -> 67 for the simplest read (1.6x) and
    # 989 -> 442 for the 2-node write (2.2x): check comparable factors.
    r1 = row_for(table_5_4_rows, "r1")
    assert 1.3 < r1.elapsed_ms / r1.new_primitives_ms < 2.3
    w1w1 = row_for(table_5_4_rows, "w1w1")
    assert 1.6 < w1w1.elapsed_ms / w1w1.new_primitives_ms < 3.0


def test_remote_write_gains_most_from_improved_architecture(table_5_4_rows):
    """'Remote write transactions show the biggest performance increase'
    from the architectural change (commit processing leaves the critical
    path)."""
    def gain(key):
        row = row_for(table_5_4_rows, key)
        return (row.elapsed_ms - row.improved_ms) / row.elapsed_ms

    assert gain("w1w1") > gain("r1r1")
    assert gain("w1w1") > gain("w1")
