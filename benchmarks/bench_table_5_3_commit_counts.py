"""Table 5-3: commit primitive counts per commit protocol.

One caveat separates measurement from the paper's table: the paper counted
primitives on the *longest estimated execution path* through the commit
protocol (branches to different children run in parallel and only one is
counted -- hence the fractional "2.5 datagrams"), while our instrumentation
counts *every* primitive executed.  The single-node rows, where the path is
the whole protocol, must match exactly; multi-node rows are asserted
against the total implied by our protocol, and the elapsed-time agreement
in Table 5-4 is the fidelity check for the parallel part.
"""

from benchmarks.conftest import write_result
from repro.kernel.costs import Primitive
from repro.perf.report import render_table_5_3

P = Primitive


def result_for(measured_results, key):
    return next(r for r in measured_results if r.spec.key == key)


def test_render_table_5_3(measured_results, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    write_result("table_5_3.txt", render_table_5_3(measured_results))


def test_one_node_read_only_commit_matches_paper(measured_results):
    counts = result_for(measured_results, "r1").commit_counts
    assert counts.get(P.SMALL_MESSAGE, 0) == 5
    assert counts.get(P.DATAGRAM, 0) == 0
    assert counts.get(P.STABLE_STORAGE_WRITE, 0) == 0


def test_one_node_write_commit_matches_paper(measured_results):
    counts = result_for(measured_results, "w1").commit_counts
    assert counts.get(P.SMALL_MESSAGE, 0) == 8
    assert counts.get(P.LARGE_MESSAGE, 0) == 1
    assert counts.get(P.STABLE_STORAGE_WRITE, 0) == 1


def test_read_only_commit_never_forces_the_log(measured_results):
    for key in ("r1", "r5", "r1r1", "r1r5", "r1r1r1"):
        counts = result_for(measured_results, key).commit_counts
        assert counts.get(P.STABLE_STORAGE_WRITE, 0) == 0, key


def test_two_node_read_only_uses_two_datagrams(measured_results):
    counts = result_for(measured_results, "r1r1").commit_counts
    assert counts.get(P.DATAGRAM, 0) == 2  # prepare out, vote back
    assert counts.get(P.POINTER_MESSAGE, 0) == 1  # the spanning-info reply


def test_two_node_write_uses_four_datagrams(measured_results):
    counts = result_for(measured_results, "w1w1").commit_counts
    assert counts.get(P.DATAGRAM, 0) == 4  # prepare/vote/commit/ack


def test_three_node_doubles_the_fanout(measured_results):
    read = result_for(measured_results, "r1r1r1").commit_counts
    write = result_for(measured_results, "w1w1w1").commit_counts
    assert read.get(P.DATAGRAM, 0) == 4    # 2 children x (prepare + vote)
    assert write.get(P.DATAGRAM, 0) == 8   # 2 children x 4

def test_update_commit_forces_once_per_updating_node(measured_results):
    """Presumed abort: the coordinator forces its commit record; every
    updating subordinate forces PREPARED and COMMITTED records."""
    assert result_for(measured_results, "w1").commit_counts[
        P.STABLE_STORAGE_WRITE] == 1
    assert result_for(measured_results, "w1w1").commit_counts[
        P.STABLE_STORAGE_WRITE] == 3
    assert result_for(measured_results, "w1w1w1").commit_counts[
        P.STABLE_STORAGE_WRITE] == 5
