"""Committed TPS while every shard loses a replica -- the availability bench.

Two branches sharded over two nodes with rf=2 (every key-space has a
copy on both), driven by steady DebitCredit traffic while a seeded
rolling plan derived from the placement map crashes one replica of
every shard in turn (stagger wider than the restart window, so no shard
ever loses both copies at once).  The claim under test is the PR's
headline: a replica crash is *degraded service* -- writes fan out to
fewer copies, reads fail over, commits keep flowing -- never an outage.
The payload therefore records, besides committed TPS, the **maximum
commit gap**: the longest stretch of simulated time with no commit
anywhere in the cluster.

``python benchmarks/bench_availability.py --json`` regenerates
``BENCH_availability.json`` at the repository root; ``--smoke`` runs a
shortened variant whose gate also checks TPS against the committed
baseline (CI uploads the smoke payload as an artifact).
"""

import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script, not under pytest
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT))

import pytest

from benchmarks.conftest import REPO_ROOT, baseline_main, write_result
from repro.chaos import ChaosController, FaultPlan, crash_one_replica_per_shard
from repro.core.cluster import TabsCluster
from repro.core.config import ReplicationConfig, TabsConfig, WorkloadConfig
from repro.workloads import DebitCreditWorkload

#: two branches on two nodes; 70% of account traffic is remote, so most
#: transactions exercise cross-node write fan-out
BENCH_WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=200,
                                tellers_per_branch=4, locality=0.3)
REPLICATION = ReplicationConfig.available_copies()
SEED = 1985
SPACING_MS = 300.0
FULL_DURATION_MS = 24_000.0
#: long enough that the fixed-cost windows (1.5 s failure detection,
#: 5 s in-doubt inquiry, catch-up retries) stay well under the gap bar,
#: which scales with duration while those costs do not
SMOKE_DURATION_MS = 18_000.0
#: no commit gap may exceed this fraction of the run: the crash windows
#: (detection + in-doubt resolution) bound it well below a full outage
MAX_GAP_FRACTION = 0.4
#: smoke TPS may drift this much from the committed full-run baseline
#: (shorter window, same rolling schedule -> coarser quantization)
SMOKE_TPS_TOLERANCE = 0.5
BASELINE_PATH = REPO_ROOT / "BENCH_availability.json"


def rolling_plan(placement, duration_ms: float) -> FaultPlan:
    """One crash per shard's last-rank replica, staggered so restarts
    complete before the next crash lands."""
    return FaultPlan(crash_one_replica_per_shard(
        placement,
        at_ms=0.15 * duration_ms,
        restart_after_ms=0.20 * duration_ms,
        stagger_ms=0.45 * duration_ms))


def run_availability(duration_ms: float) -> dict:
    config = TabsConfig(seed=SEED, workload=BENCH_WORKLOAD,
                        replication=REPLICATION)
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    plan = rolling_plan(cluster.placement, duration_ms)
    controller = ChaosController(cluster, plan, seed=SEED)
    controller.install()
    driver = DebitCreditWorkload(cluster, topology, controller=controller,
                                 seed=SEED)
    offered = int(duration_ms / SPACING_MS)
    driver.schedule_traffic(txns=offered, spacing_ms=SPACING_MS)
    driver.run(duration_ms)
    quiet = driver.finale()
    report = driver.check_invariants(quiet=quiet)

    commit_times = sorted(event[0] for event in controller.trace
                          if event[1] == "txn" and event[4] == "committed")
    points = [0.0] + commit_times + [duration_ms]
    max_gap = max(later - earlier
                  for earlier, later in zip(points, points[1:]))

    def counter_sum(name: str) -> int:
        return sum(counter.value for (node, metric), counter
                   in cluster.metrics.counters().items() if metric == name)

    outcomes = driver.stats.outcomes()
    return {
        "duration_ms": duration_ms,
        "plan": [{"node": action.node, "at_ms": action.at_ms,
                  "restart_after_ms": action.restart_after_ms}
                 for action in plan],
        "offered": offered,
        "committed": outcomes.get("committed", 0),
        "aborted": outcomes.get("aborted", 0),
        "skipped": outcomes.get("skipped", 0),
        "unknown": outcomes.get("unknown", 0),
        "tps": round(outcomes.get("committed", 0) / (duration_ms / 1000.0),
                     3),
        "max_commit_gap_ms": round(max_gap, 3),
        "read_failovers": counter_sum("replication.read_failover"),
        "degraded_writes": counter_sum("replication.write_all_degraded"),
        "validation_aborts": counter_sum("replication.validation_abort"),
        "catchup_pages": counter_sum("replica.catchup_pages"),
        "audits_ok": report.ok,
        "violations": [v.kind for v in report.violations],
    }


@pytest.fixture(scope="module")
def availability_result():
    return run_availability(FULL_DURATION_MS)


def test_render_availability(availability_result, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    r = availability_result
    lines = ["DebitCredit under rolling replica crashes (rf=2, "
             "one replica per shard)", "=" * 72,
             f"offered {r['offered']}  committed {r['committed']}  "
             f"tps {r['tps']}",
             f"max commit gap {r['max_commit_gap_ms']} ms of "
             f"{r['duration_ms']} ms",
             f"read failovers {r['read_failovers']}  degraded writes "
             f"{r['degraded_writes']}  catchup pages {r['catchup_pages']}",
             f"audits ok: {r['audits_ok']}"]
    write_result("availability.txt", "\n".join(lines))


def test_commits_flow_through_both_crashes(availability_result):
    """The acceptance bar: the cluster keeps committing while each
    shard's replica is down."""
    assert availability_result["committed"] > 0
    last_crash = max(a["at_ms"] for a in availability_result["plan"])
    assert last_crash < FULL_DURATION_MS


def test_no_full_outage_window(availability_result):
    r = availability_result
    assert r["max_commit_gap_ms"] < MAX_GAP_FRACTION * r["duration_ms"], \
        f"commit gap {r['max_commit_gap_ms']} ms is an outage"


def test_service_degraded_not_refused(availability_result):
    assert availability_result["degraded_writes"] > 0
    assert availability_result["catchup_pages"] > 0


def test_audits_pass_after_repair(availability_result):
    assert availability_result["audits_ok"], \
        availability_result["violations"]


def payload_from(result: dict) -> dict:
    return {
        "workload": {
            "schema": BENCH_WORKLOAD.schema,
            "branches": BENCH_WORKLOAD.branches,
            "branches_per_node": BENCH_WORKLOAD.branches_per_node,
            "tellers_per_branch": BENCH_WORKLOAD.tellers_per_branch,
            "accounts_per_branch": BENCH_WORKLOAD.accounts_per_branch,
            "locality": BENCH_WORKLOAD.locality,
        },
        "replication": {
            "replication_factor": REPLICATION.replication_factor,
            "prepared_inquiry_ms": REPLICATION.prepared_inquiry_ms,
            "catchup_retry_ms": REPLICATION.catchup_retry_ms,
        },
        "seed": SEED,
        "spacing_ms": SPACING_MS,
        **result,
    }


def baseline_payload(duration_ms: float = FULL_DURATION_MS) -> dict:
    """The committed baseline (timestamp-free: deterministic simulation,
    so regenerating an unchanged tree is a no-op diff)."""
    return payload_from(run_availability(duration_ms))


def test_baseline_json_matches_current_tree(availability_result):
    """BENCH_availability.json is regenerated, not hand-edited."""
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed == payload_from(availability_result)


def smoke_check(payload: dict) -> tuple[bool, str]:
    """Gate the shortened CI run against the committed full baseline."""
    problems = []
    if payload["committed"] <= 0:
        problems.append("no transaction committed under rolling crashes")
    if not payload["audits_ok"]:
        problems.append(f"audits failed: {payload['violations']}")
    gap_limit = MAX_GAP_FRACTION * payload["duration_ms"]
    if payload["max_commit_gap_ms"] >= gap_limit:
        problems.append(
            f"commit gap {payload['max_commit_gap_ms']} ms exceeds "
            f"{gap_limit} ms: that is an outage window")
    committed = json.loads(BASELINE_PATH.read_text())
    if committed["tps"] > 0:
        drift = abs(payload["tps"] - committed["tps"]) / committed["tps"]
        if drift > SMOKE_TPS_TOLERANCE:
            problems.append(
                f"tps drifted {drift:.0%} from baseline "
                f"({payload['tps']} vs {committed['tps']})")
    summary = (f"tps={payload['tps']}, "
               f"max_gap={payload['max_commit_gap_ms']}ms, "
               f"degraded_writes={payload['degraded_writes']}")
    if problems:
        summary += "; " + "; ".join(problems)
    return not problems, summary


def main(argv: list[str] | None = None) -> int:
    return baseline_main(
        argv,
        description="Regenerate the replication availability baseline.",
        baseline_path=BASELINE_PATH,
        payload_fn=baseline_payload,
        full_duration_ms=FULL_DURATION_MS,
        smoke_duration_ms=SMOKE_DURATION_MS,
        smoke_check=smoke_check)


if __name__ == "__main__":
    raise SystemExit(main())
