"""Table 5-1: primitive operation times, measured on the substrate.

The paper measured nine primitives on a Perq T2 by repeatedly calling the
appropriate Accent and TABS functions; we do the same against the simulated
substrate.  The reproduction target is exact agreement with the configured
profile -- any deviation means some path double-charges or forgets a
primitive.
"""

import pytest

from benchmarks.conftest import write_result
from repro.kernel.costs import MEASURED_1985, Primitive
from repro.perf.primitives import measure_primitives
from repro.perf.report import render_table_5_1


@pytest.fixture(scope="module")
def measured():
    return measure_primitives(repetitions=20)


def test_render_table_5_1(measured, benchmark):
    benchmark.pedantic(lambda: measure_primitives(repetitions=2),
                       iterations=1, rounds=1)
    write_result("table_5_1.txt", render_table_5_1(measured, MEASURED_1985))


@pytest.mark.parametrize("primitive", list(Primitive))
def test_primitive_matches_paper(measured, primitive):
    paper = MEASURED_1985.time_of(primitive)
    assert measured[primitive] == pytest.approx(paper, rel=0.02), (
        f"{primitive}: measured {measured[primitive]:.2f} ms vs paper "
        f"{paper} ms")
