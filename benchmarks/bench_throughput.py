"""Throughput versus concurrency -- the Section 7 future-work study.

Conflict-free applications scale; applications serialized by a shared
write lock do not.  The paper's no-load latency gives a first-order
prediction for both regimes: ~1000/latency commits per second per
conflict-free application, and ~1000/latency total for fully serialized
writers.
"""

import pytest

from benchmarks.conftest import write_result
from repro.perf.throughput import run_throughput

CONCURRENCIES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweeps():
    return {
        workload: [run_throughput(n, workload, duration_ms=30_000.0)
                   for n in CONCURRENCIES]
        for workload in ("disjoint", "shared")}


def test_render_throughput(sweeps, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Throughput vs concurrency (committed txns/second)", "=" * 50,
             f"{'concurrency':>12s} {'disjoint':>10s} {'shared':>10s}"]
    for index, concurrency in enumerate(CONCURRENCIES):
        lines.append(
            f"{concurrency:>12d} "
            f"{sweeps['disjoint'][index].commits_per_second:>10.2f} "
            f"{sweeps['shared'][index].commits_per_second:>10.2f}")
    write_result("throughput.txt", "\n".join(lines))


def test_disjoint_workload_scales(sweeps):
    rates = [r.commits_per_second for r in sweeps["disjoint"]]
    assert rates[-1] > 5 * rates[0]  # 8 apps ≈ 8x one app (lock-ideal)


def test_shared_workload_saturates(sweeps):
    rates = [r.commits_per_second for r in sweeps["shared"]]
    # Serialized by the single write lock: more apps, same total rate.
    assert rates[-1] < 1.5 * rates[0]


def test_single_app_rate_matches_latency_prediction(sweeps):
    """1000 / (w1 elapsed ≈ 244 ms) ≈ 4.1 commits/second."""
    rate = sweeps["disjoint"][0].commits_per_second
    assert rate == pytest.approx(1000.0 / 244.0, rel=0.15)


def test_no_aborts_without_conflicts(sweeps):
    assert all(r.aborted == 0 for r in sweeps["disjoint"])
