"""Throughput versus concurrency -- the Section 7 future-work study.

Conflict-free applications scale; applications serialized by a shared
write lock do not.  The paper's no-load latency gives a first-order
prediction for both regimes: ~1000/latency commits per second per
conflict-free application, and ~1000/latency total for fully serialized
writers.

The pipeline-comparison half measures the group-commit payoff: the
``paper`` pipeline (one log force per commit record) against the
``grouped`` pipeline (batched forces + coalesced 2PC datagrams), both
over a serial log device.  ``python benchmarks/bench_throughput.py
--json`` regenerates ``BENCH_throughput.json`` at the repository root;
``--smoke`` runs a shortened variant for CI.
"""

import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script, not under pytest
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT))

import pytest

from benchmarks.conftest import REPO_ROOT, baseline_main, write_result
from repro.perf.throughput import compare_pipelines, run_throughput

CONCURRENCIES = (1, 2, 4, 8)
#: concurrency levels for the paper-versus-grouped pipeline comparison
PIPELINE_CONCURRENCIES = (1, 4, 16)
BASELINE_PATH = REPO_ROOT / "BENCH_throughput.json"


@pytest.fixture(scope="module")
def sweeps():
    return {
        workload: [run_throughput(n, workload, duration_ms=30_000.0)
                   for n in CONCURRENCIES]
        for workload in ("disjoint", "shared")}


@pytest.fixture(scope="module")
def pipeline_results():
    return compare_pipelines(list(PIPELINE_CONCURRENCIES),
                             duration_ms=10_000.0)


def test_render_throughput(sweeps, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Throughput vs concurrency (committed txns/second)", "=" * 50,
             f"{'concurrency':>12s} {'disjoint':>10s} {'shared':>10s}"]
    for index, concurrency in enumerate(CONCURRENCIES):
        lines.append(
            f"{concurrency:>12d} "
            f"{sweeps['disjoint'][index].commits_per_second:>10.2f} "
            f"{sweeps['shared'][index].commits_per_second:>10.2f}")
    write_result("throughput.txt", "\n".join(lines))


def test_disjoint_workload_scales(sweeps):
    rates = [r.commits_per_second for r in sweeps["disjoint"]]
    assert rates[-1] > 5 * rates[0]  # 8 apps ≈ 8x one app (lock-ideal)


def test_shared_workload_saturates(sweeps):
    rates = [r.commits_per_second for r in sweeps["shared"]]
    # Serialized by the single write lock: more apps, same total rate.
    assert rates[-1] < 1.5 * rates[0]


def test_single_app_rate_matches_latency_prediction(sweeps):
    """1000 / (w1 elapsed ≈ 244 ms) ≈ 4.1 commits/second."""
    rate = sweeps["disjoint"][0].commits_per_second
    assert rate == pytest.approx(1000.0 / 244.0, rel=0.15)


def test_no_aborts_without_conflicts(sweeps):
    assert all(r.aborted == 0 for r in sweeps["disjoint"])


# -- group commit versus the paper pipeline -----------------------------------


def test_render_pipeline_comparison(sweeps, pipeline_results, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Commit pipelines over a serial log device "
             "(commits/sec, forces/commit)", "=" * 66,
             f"{'concurrency':>12s} {'paper':>16s} {'grouped':>16s}"]
    for index, concurrency in enumerate(PIPELINE_CONCURRENCIES):
        paper = pipeline_results["paper"][index]
        grouped = pipeline_results["grouped"][index]
        lines.append(
            f"{concurrency:>12d} "
            f"{paper.commits_per_second:>8.2f} {paper.forces_per_commit:>7.3f} "
            f"{grouped.commits_per_second:>8.2f} "
            f"{grouped.forces_per_commit:>7.3f}")
    write_result("pipelines.txt", "\n".join(lines))


def test_paper_pipeline_saturates_on_serial_device(pipeline_results):
    """One force per commit over a serial device caps total throughput."""
    rates = [r.commits_per_second for r in pipeline_results["paper"]]
    assert rates[-1] < 1.5 * rates[1]  # 16 clients barely beat 4
    assert all(r.forces_per_commit >= 1.0
               for r in pipeline_results["paper"])


def test_grouped_pipeline_doubles_throughput_at_16_clients(pipeline_results):
    """The acceptance bar: >= 2x committed txns/sec at 16 clients."""
    paper = pipeline_results["paper"][-1]
    grouped = pipeline_results["grouped"][-1]
    assert grouped.commits_per_second >= 2.0 * paper.commits_per_second


def test_grouped_pipeline_amortizes_forces(pipeline_results):
    """Group commit shares one force across a window of commits."""
    grouped = pipeline_results["grouped"][-1]
    assert grouped.forces_per_commit < 1.0
    # At concurrency 1 there is nothing to share; no worse than paper.
    assert pipeline_results["grouped"][0].committed >= \
        pipeline_results["paper"][0].committed


def test_pipelines_agree_at_concurrency_one(pipeline_results):
    """A lone client gains nothing from batching -- and loses nothing."""
    paper = pipeline_results["paper"][0]
    grouped = pipeline_results["grouped"][0]
    assert grouped.committed == paper.committed
    assert grouped.aborted == paper.aborted == 0


# -- the BENCH_throughput.json baseline ---------------------------------------


def baseline_payload(duration_ms: float = 10_000.0) -> dict:
    """The committed baseline: both pipelines at 1/4/16 clients.

    The simulation is deterministic, so the payload carries no timestamp
    and regenerating it on an unchanged tree is a no-op diff.
    """
    results = compare_pipelines(list(PIPELINE_CONCURRENCIES),
                                duration_ms=duration_ms)
    paper_16 = results["paper"][-1]
    grouped_16 = results["grouped"][-1]
    return {
        "workload": "disjoint",
        "duration_ms": duration_ms,
        "concurrencies": list(PIPELINE_CONCURRENCIES),
        "pipelines": {
            name: [{"concurrency": r.concurrency,
                    "committed": r.committed,
                    "aborted": r.aborted,
                    "commits_per_second": round(r.commits_per_second, 3),
                    "forces": r.forces,
                    "forces_per_commit": round(r.forces_per_commit, 4)}
                   for r in rows]
            for name, rows in results.items()},
        "speedup_at_16_clients": round(
            grouped_16.commits_per_second / paper_16.commits_per_second, 3),
    }


def test_baseline_json_matches_current_tree(pipeline_results):
    """BENCH_throughput.json is regenerated, not hand-edited; drift fails."""
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed == baseline_payload(duration_ms=10_000.0)


def smoke_check(payload: dict) -> tuple[bool, str]:
    paper_16 = payload["pipelines"]["paper"][-1]
    grouped_16 = payload["pipelines"]["grouped"][-1]
    ok = (payload["speedup_at_16_clients"] >= 2.0
          and grouped_16["forces_per_commit"] < 1.0
          and paper_16["forces_per_commit"] >= 1.0)
    return ok, (f"speedup={payload['speedup_at_16_clients']}x, "
                f"grouped forces/commit={grouped_16['forces_per_commit']}")


def main(argv: list[str] | None = None) -> int:
    return baseline_main(
        argv,
        description="Regenerate the commit-pipeline throughput baseline.",
        baseline_path=BASELINE_PATH,
        payload_fn=lambda duration_ms:
            baseline_payload(duration_ms=duration_ms),
        full_duration_ms=10_000.0,
        smoke_duration_ms=2_000.0,
        smoke_check=smoke_check)


if __name__ == "__main__":
    raise SystemExit(main())
