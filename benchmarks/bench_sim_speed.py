"""Simulator raw speed -- the meta-benchmark behind ROADMAP item 3.

Every other bench measures the *simulated* system; this one measures the
simulator.  Three representative workloads -- disjoint multi-client
throughput (pure event-loop churn), DebitCredit under the hot row (lock
waits + 2PC + group-commit machinery), and DebitCredit over rf=2
available-copies replication (write fan-out, the heaviest fabric) -- run
for a fixed simulated window while the harness records:

- **deterministic shape**: events scheduled/executed, daemon share, heap
  high-water, committed transactions, events per commit, and events per
  *simulated* second.  These are pure functions of the configuration and
  go into the committed ``BENCH_sim_speed.json`` baseline -- they gate
  *event-churn* regressions (a change that doubles the events behind one
  commit shows up here even if the wall clock forgives it).
- **wall speed**: simulated-events per wall second and wall seconds per
  simulated second.  Real time is nondeterministic, so these stay out of
  the committed baseline; the smoke gate applies a generous absolute
  floor that only an order-of-magnitude regression (an accidentally
  quadratic heap, say) can trip.

``python benchmarks/bench_sim_speed.py --json`` regenerates
``BENCH_sim_speed.json`` at the repository root (deterministic sections
only -- regenerating an unchanged tree is a no-op diff); ``--smoke``
runs the shortened CI variant and exits nonzero if the gate fails.
"""

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script, not under pytest
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT))

import pytest

from benchmarks.conftest import REPO_ROOT, baseline_main, write_result
from repro.core.cluster import TabsCluster
from repro.core.config import ReplicationConfig, TabsConfig, WorkloadConfig
from repro.perf.debitcredit import run_debitcredit
from repro.perf.throughput import run_throughput
from repro.workloads import DebitCreditWorkload

SEED = 1985
#: hot-row DebitCredit: eight branches co-hosted on one bank node
DEBITCREDIT_WORKLOAD = WorkloadConfig(branches=8, branches_per_node=8,
                                      accounts_per_branch=1_000)
#: rf=2 over two nodes, 70% remote accounts: heaviest message fabric
REPLICATED_WORKLOAD = WorkloadConfig(branches=2, accounts_per_branch=200,
                                     tellers_per_branch=4, locality=0.3)
REPLICATION = ReplicationConfig.available_copies()
REPLICATED_SPACING_MS = 300.0
FULL_DURATION_MS = 10_000.0
SMOKE_DURATION_MS = 4_000.0
#: smoke events-per-commit may drift this much from the committed
#: full-run baseline (shorter window -> heavier startup transient).
#: Events per commit is the window-stable churn measure; events per
#: simulated second is *not* gated across window sizes because the
#: post-deadline drain tail scales differently with the window.
SMOKE_DRIFT_TOLERANCE = 0.35
#: absolute wall-speed floor per scenario, events per wall second.
#: After the calendar-queue engine and slab-lean fabric work a dev
#: machine measures ~130-170k on every scenario (replicated_rf2 is the
#: slowest); the floor sits ~5x below that so it gates real regressions
#: in the engine hot path while tolerating a noisy CI runner.
MIN_EVENTS_PER_WALL_SEC = 25_000.0
BASELINE_PATH = REPO_ROOT / "BENCH_sim_speed.json"


def _capture(captured):
    def instrument(cluster):
        captured.append(cluster)
    return instrument


def run_disjoint(duration_ms: float):
    """Eight clients, disjoint cells: event-loop churn, no contention."""
    captured: list[TabsCluster] = []
    result = run_throughput(8, "disjoint", duration_ms,
                            config=TabsConfig(seed=SEED),
                            instrument=_capture(captured))
    return captured[0], result.committed


def run_hot_row(duration_ms: float):
    """Eight DebitCredit clients against eight co-hosted hot branches."""
    captured: list[TabsCluster] = []
    result = run_debitcredit(8, duration_ms,
                             config=TabsConfig(seed=SEED),
                             workload=DEBITCREDIT_WORKLOAD,
                             instrument=_capture(captured))
    return captured[0], result.committed


def run_replicated(duration_ms: float):
    """DebitCredit over rf=2 available-copies replication, fault-free."""
    config = TabsConfig(seed=SEED, workload=REPLICATED_WORKLOAD,
                        replication=REPLICATION)
    cluster = TabsCluster(config)
    topology = cluster.build_workload()
    driver = DebitCreditWorkload(cluster, topology, seed=SEED)
    offered = int(duration_ms / REPLICATED_SPACING_MS)
    driver.schedule_traffic(txns=offered,
                            spacing_ms=REPLICATED_SPACING_MS)
    driver.run(duration_ms)
    driver.drain()
    return cluster, driver.stats.outcomes().get("committed", 0)


SCENARIOS = {
    "disjoint": run_disjoint,
    "debitcredit_hot_row": run_hot_row,
    "replicated_rf2": run_replicated,
}


def measure(runner, duration_ms: float) -> tuple[dict, dict]:
    """Run one scenario; split the reading into (deterministic, wall)."""
    start = time.perf_counter()
    cluster, committed = runner(duration_ms)
    wall_s = time.perf_counter() - start
    engine = cluster.engine
    sim_s = engine.now / 1000.0
    events = engine.events_executed
    deterministic = {
        "sim_ms": round(engine.now, 3),
        "events_scheduled": engine.events_scheduled,
        "events_executed": events,
        "daemon_executed": engine.daemon_executed,
        "heap_high_water": engine.heap_high_water,
        "committed": committed,
        "events_per_commit": round(events / committed, 1) if committed
        else 0.0,
        "events_per_sim_sec": round(events / sim_s, 1) if sim_s else 0.0,
    }
    wall = {
        "wall_sec": round(wall_s, 3),
        "events_per_wall_sec": round(events / wall_s, 0) if wall_s
        else 0.0,
        "wall_sec_per_sim_sec": round(wall_s / sim_s, 5) if sim_s
        else 0.0,
    }
    return deterministic, wall


def run_all(duration_ms: float) -> dict:
    scenarios = {}
    wall = {}
    for name, runner in SCENARIOS.items():
        scenarios[name], wall[name] = measure(runner, duration_ms)
    return {"duration_ms": duration_ms, "seed": SEED,
            "scenarios": scenarios, "wall": wall}


def deterministic_payload(payload: dict) -> dict:
    """What the committed baseline holds: everything but wall readings."""
    return {key: value for key, value in payload.items()
            if key != "wall"}


@pytest.fixture(scope="module")
def sim_speed_results():
    return run_all(FULL_DURATION_MS)


def test_render_sim_speed(sim_speed_results, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Simulator raw speed (events/sim-sec deterministic; "
             "wall readings vary by machine)", "=" * 72,
             f"{'scenario':>20s} {'events':>8s} {'commits':>8s} "
             f"{'ev/commit':>10s} {'ev/sim-s':>10s} {'ev/wall-s':>10s} "
             f"{'wall/sim':>9s}"]
    for name, det in sim_speed_results["scenarios"].items():
        wall = sim_speed_results["wall"][name]
        lines.append(
            f"{name:>20s} {det['events_executed']:>8d} "
            f"{det['committed']:>8d} {det['events_per_commit']:>10.1f} "
            f"{det['events_per_sim_sec']:>10.1f} "
            f"{wall['events_per_wall_sec']:>10.0f} "
            f"{wall['wall_sec_per_sim_sec']:>9.5f}")
    write_result("sim_speed.txt", "\n".join(lines))


def test_every_scenario_commits(sim_speed_results):
    for name, det in sim_speed_results["scenarios"].items():
        assert det["committed"] > 0, f"{name} committed nothing"
        assert det["events_executed"] > 0


def test_engine_counters_are_consistent(sim_speed_results):
    """Executed events never exceed scheduled ones, and the daemon share
    is counted within -- the always-on churn counters must agree."""
    for name, det in sim_speed_results["scenarios"].items():
        assert det["events_executed"] <= det["events_scheduled"], name
        assert det["daemon_executed"] <= det["events_executed"], name
        assert det["heap_high_water"] > 0, name


def test_baseline_json_matches_current_tree(sim_speed_results):
    """BENCH_sim_speed.json is regenerated, not hand-edited.  Only the
    deterministic sections are committed (wall speed varies by host)."""
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed == deterministic_payload(sim_speed_results)


def smoke_check(payload: dict) -> tuple[bool, str]:
    """Gate the shortened CI run.

    Deterministic gate: per-scenario events-per-commit within tolerance
    of the committed full-run baseline (catches event-churn bloat: a
    change that doubles the events behind one commit).  Wall gate: a
    generous absolute events-per-wall-second floor (catches
    order-of-magnitude simulator slowdowns without flaking on slow
    runners).
    """
    problems = []
    committed = json.loads(BASELINE_PATH.read_text())
    for name, det in payload["scenarios"].items():
        want = committed["scenarios"][name]["events_per_commit"]
        got = det["events_per_commit"]
        if want > 0:
            drift = abs(got - want) / want
            if drift > SMOKE_DRIFT_TOLERANCE:
                problems.append(
                    f"{name} events/commit drifted {drift:.0%} from "
                    f"baseline ({got} vs {want})")
        if det["committed"] <= 0:
            problems.append(f"{name} committed nothing")
    for name, wall in payload["wall"].items():
        if wall["events_per_wall_sec"] < MIN_EVENTS_PER_WALL_SEC:
            problems.append(
                f"{name} ran at {wall['events_per_wall_sec']:.0f} "
                f"events/wall-sec, under the {MIN_EVENTS_PER_WALL_SEC:.0f}"
                " floor: the simulator itself has slowed an order of "
                "magnitude")
    fastest = max(wall["events_per_wall_sec"]
                  for wall in payload["wall"].values())
    summary = (f"fastest={fastest:.0f} ev/wall-sec, "
               + ", ".join(
                   f"{name}={det['events_per_commit']} ev/commit"
                   for name, det in payload["scenarios"].items()))
    if problems:
        summary += "; " + "; ".join(problems)
    return not problems, summary


def main(argv: list[str] | None = None) -> int:
    return baseline_main(
        argv,
        description="Regenerate the simulator raw-speed baseline.",
        baseline_path=BASELINE_PATH,
        payload_fn=run_all,
        full_duration_ms=FULL_DURATION_MS,
        smoke_duration_ms=SMOKE_DURATION_MS,
        smoke_check=smoke_check,
        json_filter=deterministic_payload)


if __name__ == "__main__":
    raise SystemExit(main())
