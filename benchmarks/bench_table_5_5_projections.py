"""Table 5-5: achievable primitive operation times.

The paper justifies each achievable number from published techniques
(registers for messages, dedicated logging disks, lazily allocated
coroutines).  Our reproduction measures the substrate configured with the
achievable profile and verifies the numbers -- and checks the paper's
reasoning about *which* primitives improve and which do not.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.config import TabsConfig
from repro.kernel.costs import ACHIEVABLE_1985, MEASURED_1985, Primitive
from repro.perf.primitives import measure_primitives
from repro.perf.report import render_table_5_5

P = Primitive


@pytest.fixture(scope="module")
def measured():
    return measure_primitives(TabsConfig.new_primitives(), repetitions=20)


def test_render_table_5_5(measured, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    write_result("table_5_5.txt", render_table_5_5(measured,
                                                   ACHIEVABLE_1985))


@pytest.mark.parametrize("primitive", list(Primitive))
def test_achievable_time_measured(measured, primitive):
    assert measured[primitive] == pytest.approx(
        ACHIEVABLE_1985.time_of(primitive), rel=0.02)


def test_random_io_does_not_improve():
    """'Accent random I/O times already approach the performance of the
    disk, so we do not assume any improvement here.'"""
    assert ACHIEVABLE_1985.time_of(P.RANDOM_PAGED_IO) == \
        MEASURED_1985.time_of(P.RANDOM_PAGED_IO)


def test_stable_write_halves_with_dedicated_logging_disks():
    assert ACHIEVABLE_1985.time_of(P.STABLE_STORAGE_WRITE) == \
        pytest.approx(MEASURED_1985.time_of(P.STABLE_STORAGE_WRITE) / 2.5,
                      rel=0.02)


def test_coroutine_costs_substantially_eliminated():
    """The 26.1 ms Data Server Call was 'high due to an inefficient
    implementation of coroutines'; the projection takes it to 2.5 ms."""
    ratio = (MEASURED_1985.time_of(P.DATA_SERVER_CALL)
             / ACHIEVABLE_1985.time_of(P.DATA_SERVER_CALL))
    assert ratio > 10


def test_pointer_message_improves_least():
    """'The implementation of pointer messages is fairly complex and we
    therefore assume only small improvement.'"""
    ratios = {
        p: (MEASURED_1985.time_of(p) / ACHIEVABLE_1985.time_of(p))
        for p in (P.SMALL_MESSAGE, P.LARGE_MESSAGE, P.POINTER_MESSAGE)}
    assert ratios[P.POINTER_MESSAGE] < ratios[P.SMALL_MESSAGE]
    assert ratios[P.POINTER_MESSAGE] < ratios[P.LARGE_MESSAGE]
