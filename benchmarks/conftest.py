"""Shared fixtures and CLI plumbing for the benchmark harness.

Each ``bench_table_*`` module regenerates one table of the paper's
evaluation.  The rendered paper-versus-reproduction tables are written to
``benchmarks/results/`` and echoed to stdout (run with ``-s`` to see them
live); EXPERIMENTS.md summarizes the outcomes.

The expensive work (running all fourteen benchmarks under three
configurations) is done once per session and shared.

Workload benches (``bench_throughput``, ``bench_debitcredit``) double as
scripts that regenerate a committed ``BENCH_*.json`` baseline at the repo
root; :func:`baseline_main` is the shared ``--json/--smoke/--output``
entry point so each bench file only supplies its payload function and its
smoke gate.
"""

import json
from pathlib import Path
from typing import Callable

import pytest

from repro.perf.benchmarks import BENCHMARKS, run_benchmark
from repro.core.config import TabsConfig
from repro.perf.projections import run_table_5_4

RESULTS_DIR = Path(__file__).parent / "results"
#: the repository root, where committed ``BENCH_*.json`` baselines live
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)


def baseline_main(argv: list[str] | None, *, description: str,
                  baseline_path: Path,
                  payload_fn: Callable[[float], dict],
                  full_duration_ms: float,
                  smoke_duration_ms: float,
                  smoke_check: Callable[[dict], tuple[bool, str]],
                  json_filter: Callable[[dict], dict] | None = None) -> int:
    """Shared CLI for baseline-regenerating benches.

    ``payload_fn(duration_ms)`` produces the JSON-ready payload (the
    simulation is deterministic, so payloads carry no timestamps and
    regenerating an unchanged tree is a no-op diff).  ``smoke_check``
    returns ``(ok, summary_line)`` for the shortened CI variant; CI runs
    ``--smoke --json --output BENCH_<name>.smoke.json`` and uploads the
    artifact.

    ``json_filter`` (if given) maps the payload to what ``--json``
    writes: benches that *measure wall-clock time* (``bench_sim_speed``)
    keep the nondeterministic wall section out of the committed baseline
    while the smoke gate still sees it.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--json", action="store_true",
                        help=f"write {baseline_path.name} at the repo root")
    parser.add_argument("--smoke", action="store_true",
                        help="short windows (CI); exit nonzero if the "
                             "smoke gate fails")
    parser.add_argument("--output", type=Path, default=None,
                        help="override the output path for --json")
    args = parser.parse_args(argv)

    duration_ms = smoke_duration_ms if args.smoke else full_duration_ms
    payload = payload_fn(duration_ms)
    written = json_filter(payload) if json_filter is not None else payload
    text = json.dumps(written, indent=2) + "\n"
    if args.json:
        output = args.output or baseline_path
        output.write_text(text)
        print(f"wrote {output}")
    print(text, end="")
    if args.smoke:
        ok, summary = smoke_check(payload)
        print(f"smoke {'PASS' if ok else 'FAIL'}: {summary}")
        return 0 if ok else 1
    return 0


@pytest.fixture(scope="session")
def measured_results():
    """All fourteen benchmarks under the measured-1985 configuration."""
    return [run_benchmark(spec, TabsConfig.measured(), iterations=10)
            for spec in BENCHMARKS]


@pytest.fixture(scope="session")
def table_5_4_rows():
    """All fourteen benchmarks under all three configurations."""
    return run_table_5_4(iterations=10)
