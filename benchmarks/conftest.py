"""Shared fixtures for the benchmark harness.

Each ``bench_table_*`` module regenerates one table of the paper's
evaluation.  The rendered paper-versus-reproduction tables are written to
``benchmarks/results/`` and echoed to stdout (run with ``-s`` to see them
live); EXPERIMENTS.md summarizes the outcomes.

The expensive work (running all fourteen benchmarks under three
configurations) is done once per session and shared.
"""

from pathlib import Path

import pytest

from repro.perf.benchmarks import BENCHMARKS, run_benchmark
from repro.core.config import TabsConfig
from repro.perf.projections import run_table_5_4

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def measured_results():
    """All fourteen benchmarks under the measured-1985 configuration."""
    return [run_benchmark(spec, TabsConfig.measured(), iterations=10)
            for spec in BENCHMARKS]


@pytest.fixture(scope="session")
def table_5_4_rows():
    """All fourteen benchmarks under all three configurations."""
    return run_table_5_4(iterations=10)
