"""Commit-latency scaling with fan-out -- extending the paper's analysis.

The paper measures one, two, and three nodes and models the parallel
prepare with half-datagram sends.  The protocol has no three-node limit;
this study runs the same write benchmark across 1-6 nodes and checks the
model's prediction: latency grows *sub-linearly* in fan-out because the
branches overlap -- each extra child costs roughly one datagram (two
half-sends) plus per-child bookkeeping, not a full extra commit round.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.servers.int_array import IntegerArrayServer

NODE_COUNTS = (1, 2, 3, 4, 6)


def run_fanout_write(node_count: int, iterations: int = 8) -> float:
    """One write on every node per transaction; ms per transaction."""
    cluster = TabsCluster(TabsConfig())
    for index in range(node_count):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"arr{index}"))
    cluster.start()
    app = cluster.application("n0", measured=True)
    refs = [cluster.run_on("n0", app.lookup_one(f"arr{index}"))
            for index in range(node_count)]

    def one(iteration):
        tid = yield from app.begin_transaction()
        for ref in refs:
            yield from app.call(ref, "set_cell",
                                {"cell": 1, "value": iteration}, tid)
        committed = yield from app.end_transaction(tid)
        assert committed

    cluster.run_on("n0", one(0))
    started = cluster.engine.now
    for iteration in range(1, iterations + 1):
        cluster.run_on("n0", one(iteration))
    return (cluster.engine.now - started) / iterations


@pytest.fixture(scope="module")
def latencies():
    return {count: run_fanout_write(count) for count in NODE_COUNTS}


def test_render_scaling(latencies, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Write-commit latency vs fan-out (ms per transaction)",
             "=" * 52]
    previous = None
    for count, latency in latencies.items():
        delta = "" if previous is None else f"  (+{latency - previous:.0f})"
        lines.append(f"  {count} node(s): {latency:8.1f}{delta}")
        previous = latency
    write_result("scaling.txt", "\n".join(lines))


def test_fanout_scales_sublinearly(latencies):
    """Six participants cost far less than a serial protocol would: if
    every child repeated the first child's full remote round trip, six
    nodes would cost latencies[1] + 5 x (latencies[2] - latencies[1])."""
    serial_estimate = latencies[1] + 5 * (latencies[2] - latencies[1])
    assert latencies[6] < serial_estimate / 2
    assert latencies[6] < 2 * latencies[2]


def test_marginal_child_cost_shrinks(latencies):
    """The 2nd node pays for the whole remote round trip; later nodes pay
    only the serialized halves and bookkeeping."""
    first_child = latencies[2] - latencies[1]
    later_child = (latencies[6] - latencies[3]) / 3
    assert later_child < first_child / 2


def test_each_extra_child_still_costs_something(latencies):
    values = [latencies[count] for count in NODE_COUNTS]
    assert values == sorted(values)
