"""The Conclusions' end-to-end latency claims (Section 7).

"Our analysis indicates that about two seconds are required for a local
transaction that invokes five operations, each of which updates two pages
that are not in memory.  The same transaction would require about one-half
second if the data were in main memory.  If the operations were performed
on one or more remote nodes, these transactions would take only about one
second longer."
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.kernel.disk import PAGE_SIZE
from repro.perf.benchmarks import BENCH_VM_CAPACITY_PAGES, CELLS_PER_PAGE
from repro.servers.int_array import IntegerArrayServer


def run_five_op_transaction(remote: bool, paging: bool) -> float:
    """Five operations, each updating two pages; returns ms per txn."""
    cluster = TabsCluster(TabsConfig().with_(
        vm_capacity_pages=BENCH_VM_CAPACITY_PAGES))
    cluster.add_node("local")
    cluster.add_server("local", IntegerArrayServer.factory("array_local"))
    if remote:
        cluster.add_node("far")
        cluster.add_server("far", IntegerArrayServer.factory("array_far"))
    cluster.start()
    app = cluster.application("local", measured=True)
    target = "array_far" if remote else "array_local"
    ref = cluster.run_on("local", app.lookup_one(target))

    if paging:
        # Steady state: a full cache of dirty pages, so every fault both
        # reads a page in and pushes one out (as on a long-running system).
        from repro.kernel.vm import ObjectID
        node = cluster.node("far" if remote else "local").node
        segment = f"{node.name}:{target}"

        def prefill():
            for page in range(node.vm.capacity_pages):
                yield from node.vm.write_object(
                    ObjectID(segment, page * PAGE_SIZE, 4), 0)

        cluster.run_on(node.name, prefill())

    def next_cell() -> int:
        # "pages that are not in memory": random pages across the whole
        # 5000-page array miss the ~700-frame cache 86% of the time.
        page = cluster.ctx.random.randrange(5000)
        return page * CELLS_PER_PAGE + 1

    def one_transaction(iteration: int):
        tid = yield from app.begin_transaction()
        for op in range(5):
            # "each of which updates two pages": one operation per page,
            # two pages per logical operation.
            for _ in range(2):
                cell = next_cell() if paging else (op * 2 + 1)
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": iteration}, tid)
        committed = yield from app.end_transaction(tid)
        assert committed

    iterations = 8
    cluster.run_on("local", one_transaction(0))  # warm-up
    started = cluster.engine.now
    for iteration in range(1, iterations + 1):
        cluster.run_on("local", one_transaction(iteration))
    return (cluster.engine.now - started) / iterations


@pytest.fixture(scope="module")
def timings():
    return {
        "local_paging": run_five_op_transaction(remote=False, paging=True),
        "local_resident": run_five_op_transaction(remote=False,
                                                  paging=False),
        "remote_paging": run_five_op_transaction(remote=True, paging=True),
        "remote_resident": run_five_op_transaction(remote=True,
                                                   paging=False),
    }


def test_render_section_7(timings, benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["Section 7 complex-transaction claims (ms per transaction)",
             "=" * 57]
    paper = {"local_paging": "~2000", "local_resident": "~500",
             "remote_paging": "~3000", "remote_resident": "~1500"}
    for key, value in timings.items():
        lines.append(f"{key:18s} {value:8.0f}   (paper: {paper[key]})")
    write_result("section_7_claims.txt", "\n".join(lines))


def test_local_paging_transaction_takes_about_two_seconds(timings):
    assert timings["local_paging"] == pytest.approx(2000, rel=0.5)


def test_resident_transaction_takes_about_half_a_second(timings):
    assert timings["local_resident"] == pytest.approx(500, rel=0.5)


def test_remote_adds_about_one_second(timings):
    extra = timings["remote_resident"] - timings["local_resident"]
    assert extra == pytest.approx(1000, rel=0.6)
