"""A transactional producer/consumer pipeline on the weak queue.

The weak queue trades FIFO order for concurrency while keeping failure
atomicity: a producer whose transaction aborts leaves no item behind, a
consumer whose transaction aborts puts its item back, and consumers skip
(rather than wait on) items a concurrent transaction is still writing.
This example runs a producer and two consumers concurrently and shows the
conservation property in action, including across a crash.

Run:  python examples/weak_queue_pipeline.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.weak_queue import WeakQueueServer
from repro.sim import Timeout


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("plant")
    cluster.add_server("plant", WeakQueueServer.factory("jobs",
                                                        capacity=32))
    cluster.start()
    app = cluster.application("plant")
    ref = cluster.run_on("plant", app.lookup_one("jobs"))

    produced, consumed = [], []

    def producer():
        for batch in range(4):
            tid = yield from app.begin_transaction()
            for item in range(3):
                job = f"job-{batch}.{item}"
                yield from app.call(ref, "enqueue", {"data": job}, tid)
            if batch == 2:
                # This batch changes its mind: all three enqueues vanish.
                yield from app.abort_transaction(tid, reason="bad batch")
                print(f"producer: batch {batch} aborted (3 items undone)")
            else:
                yield from app.end_transaction(tid)
                produced.extend(f"job-{batch}.{item}" for item in range(3))
                print(f"producer: batch {batch} committed")
            yield Timeout(cluster.engine, 500.0)

    def consumer(name):
        idle = 0
        while idle < 5:
            tid = yield from app.begin_transaction()
            try:
                result = yield from app.call(ref, "dequeue", {}, tid)
            except Exception:
                yield from app.abort_transaction(tid)
                idle += 1
                yield Timeout(cluster.engine, 400.0)
                continue
            yield from app.end_transaction(tid)
            consumed.append(result["data"])
            print(f"{name}: took {result['data']}")
            idle = 0

    workers = [cluster.spawn_on("plant", producer(), name="producer"),
               cluster.spawn_on("plant", consumer("consumer-a")),
               cluster.spawn_on("plant", consumer("consumer-b"))]
    for worker in workers:
        cluster.engine.run_until(worker)

    print(f"\nproduced (committed): {len(produced)}  "
          f"consumed: {len(consumed)}")
    assert sorted(produced) == sorted(consumed)
    print("every committed item was consumed exactly once; the aborted "
          "batch never surfaced.")

    # And the queue state is recoverable: enqueue, crash, dequeue.
    def park(tid):
        yield from app.call(ref, "enqueue", {"data": "overnight-job"}, tid)

    cluster.run_transaction("plant", park)
    cluster.crash_node("plant")
    cluster.restart_node("plant")
    app = cluster.application("plant")

    def morning(tid):
        fresh = yield from app.lookup_one("jobs")
        result = yield from app.call(fresh, "dequeue", {}, tid)
        return result["data"]

    print(f"\nafter a crash the queue still holds: "
          f"{cluster.run_transaction('plant', morning)!r}")


if __name__ == "__main__":
    main()
