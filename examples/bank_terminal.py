"""The Figure 4-1 scenario: a trivial bank on the I/O server.

"This is an actual snapshot of the current IO server running a trivial
bank implementation."  The bank keeps balances in the integer array server
and narrates each action through the I/O server, whose display model shows
output grey while a transaction is in progress (rendered here with a ``~``
prefix), black once it commits, and struck through if it aborts -- even
when the abort is a node crash, after which the server restores the
screen.

Run:  python examples/bank_terminal.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.servers.io_server import IOServer
from repro.sim import Timeout

CHECKING = 1


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("teller")
    cluster.add_server("teller", IntegerArrayServer.factory("accounts"))
    cluster.add_server("teller", IOServer.factory("display"))
    cluster.start()
    app = cluster.application("teller")

    def setup(tid):
        screen = yield from app.lookup_one("display")
        result = yield from app.call(screen, "obtain_io_area", {}, tid)
        return result["area"]

    area = cluster.run_transaction("teller", setup)

    def show_screen(label):
        def render(tid):
            screen = yield from app.lookup_one("display")
            result = yield from app.call(screen, "render_area",
                                         {"area": area}, tid)
            return result["lines"]

        print(f"\n--- screen: {label} ---")
        for line in cluster.run_transaction("teller", render):
            print(f"| {line}")

    # Area one: a successful deposit (displayed black after commit).
    def deposit(tid):
        accounts = yield from app.lookup_one("accounts")
        screen = yield from app.lookup_one("display")
        balance = yield from app.call(accounts, "get_cell",
                                      {"cell": CHECKING}, tid)
        yield from app.call(accounts, "set_cell",
                            {"cell": CHECKING,
                             "value": balance["value"] + 35}, tid)
        yield from app.call(screen, "write_to_area",
                            {"area": area,
                             "data": "deposited $35 to checking"}, tid)

    cluster.run_transaction("teller", deposit)
    show_screen("after the committed deposit (black)")

    # Area two: a withdrawal interrupted by a node failure.  The output is
    # on screen in grey while in progress...
    def doomed_withdrawal():
        tid = yield from app.begin_transaction()
        accounts = yield from app.lookup_one("accounts")
        screen = yield from app.lookup_one("display")
        yield from app.call(screen, "write_to_area",
                            {"area": area,
                             "data": "withdraw $80 from checking"}, tid)
        yield from app.call(accounts, "set_cell",
                            {"cell": CHECKING, "value": -45}, tid)
        yield Timeout(cluster.engine, 60_000.0)  # the crash interrupts us

    cluster.spawn_on("teller", doomed_withdrawal())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    show_screen("mid-withdrawal (grey: in progress)")

    print("\n*** node fails during the transaction ***")
    cluster.crash_node("teller")
    cluster.restart_node("teller")
    app = cluster.application("teller")
    show_screen("restored after the crash (withdrawal struck through)")

    # Area three: the user tries again, conversationally.
    def retry(tid):
        accounts = yield from app.lookup_one("accounts")
        screen = yield from app.lookup_one("display")
        yield from app.call(screen, "feed_input",
                            {"area": area, "data": "80"}, tid)
        amount = yield from app.call(screen, "read_line_from_area",
                                     {"area": area}, tid)
        balance = yield from app.call(accounts, "get_cell",
                                      {"cell": CHECKING}, tid)
        new_balance = balance["value"] - int(amount["data"])
        yield from app.call(accounts, "set_cell",
                            {"cell": CHECKING, "value": new_balance}, tid)
        yield from app.call(screen, "write_to_area",
                            {"area": area,
                             "data": f"withdrew $80, balance "
                                     f"${new_balance}"}, tid)
        return new_balance

    balance = cluster.run_transaction("teller", retry)
    show_screen("after the retried withdrawal")
    print(f"\nfinal checking balance: ${balance}")


if __name__ == "__main__":
    main()
