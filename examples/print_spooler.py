"""A transactional print spooler: three data servers composed.

The Conclusions predict "specialized distributed database systems, file
systems, mail systems, spoolers, editors, etc. could be based on the
implementation techniques that our existing servers use."  This spooler
composes three of them with no new recovery code:

- documents live in the **transactional file system**;
- the job queue is the **weak queue** (aborted submissions leave no job;
  concurrent submitters do not serialize);
- printed output goes to the **I/O server**, whose display shows each
  job grey while printing and black once the print transaction commits.

A submission (write the document + enqueue the job) is one transaction;
printing (dequeue + read + print) is another -- so a job is consumed
exactly once even across a crash between submissions and printing.

Run:  python examples/print_spooler.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.filesystem import TransactionalFileSystemServer
from repro.servers.io_server import IOServer
from repro.servers.weak_queue import WeakQueueServer


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("office")
    cluster.add_server("office",
                       TransactionalFileSystemServer.factory("docs"))
    cluster.add_server("office", WeakQueueServer.factory("jobs",
                                                         capacity=16))
    cluster.add_server("office", IOServer.factory("printer"))
    cluster.start()
    app = cluster.application("office")

    def setup(tid):
        fs = yield from app.lookup_one("docs")
        queue = yield from app.lookup_one("jobs")
        printer = yield from app.lookup_one("printer")
        yield from app.call(fs, "mkfs", {}, tid)
        yield from app.call(fs, "mkdir", {"path": "/spool"}, tid)
        tray = yield from app.call(printer, "obtain_io_area", {}, tid)
        return fs, queue, printer, tray["area"]

    fs, queue, printer, tray = cluster.run_transaction("office", setup)

    # --- submissions: document + job, atomically --------------------------
    def submit(name, text):
        def body(tid):
            path = f"/spool/{name}"
            yield from app.call(fs, "create", {"path": path}, tid)
            yield from app.call(fs, "write", {"path": path, "data": text},
                                tid)
            yield from app.call(queue, "enqueue", {"data": path}, tid)
        return body

    for name, text in (("report.txt", "Q3 numbers are in."),
                       ("memo.txt", "Lunch moved to noon.")):
        cluster.run_transaction("office", submit(name, text))
        print(f"submitted {name}")

    # An abandoned submission: neither the file nor the job survives.
    def abandoned():
        tid = yield from app.begin_transaction()
        yield from app.call(fs, "create", {"path": "/spool/draft"}, tid)
        yield from app.call(queue, "enqueue", {"data": "/spool/draft"},
                            tid)
        yield from app.abort_transaction(tid, reason="still editing")

    cluster.run_on("office", abandoned())
    print("an abandoned submission left no job behind")

    # --- the printer daemon: one job per transaction -----------------------
    def print_next(tid):
        job = yield from app.call(queue, "dequeue", {}, tid)
        path = job["data"]
        document = yield from app.call(fs, "read", {"path": path}, tid)
        yield from app.call(printer, "write_to_area",
                            {"area": tray,
                             "data": f"{path}: {document['data']}"}, tid)
        yield from app.call(fs, "remove", {"path": path}, tid)
        return path

    printed = []
    while True:
        try:
            printed.append(
                cluster.run_transaction("office", print_next))
        except Exception:
            break
    print(f"printed {len(printed)} jobs: {printed}")

    def render(tid):
        result = yield from app.call(printer, "render_area",
                                     {"area": tray}, tid)
        return result["lines"]

    print("\n--- printer output tray ---")
    for line in cluster.run_transaction("office", render):
        print(f"| {line}")

    def spool_dir(tid):
        result = yield from app.call(fs, "list_dir", {"path": "/spool"},
                                     tid)
        return result["entries"]

    print(f"\n/spool after printing: "
          f"{cluster.run_transaction('office', spool_dir)}")


if __name__ == "__main__":
    main()
