"""A replicated directory over three nodes (the Section 4.5 demonstration).

Three directory representatives, each a B-tree-backed data server on its
own node, coordinated client-side by weighted voting (read quorum 2, write
quorum 2 of 3).  Every operation runs inside a distributed transaction, so
commits exercise the tree-structured two-phase commit and aborts recover
on multiple nodes.  "Our tests so far involve 3 nodes, which permits one
node to fail and have the data remain available" -- the example crashes a
node and keeps going.

Run:  python examples/replicated_directory.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.replicated_dir import (
    DirectoryRepresentativeServer,
    Replica,
    ReplicatedDirectory,
)


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    for index in range(3):
        name = f"site{index}"
        cluster.add_node(name)
        cluster.add_server(
            name, DirectoryRepresentativeServer.factory(f"rep{index}"))
    cluster.start()

    app = cluster.application("site0")
    replicas = [
        Replica(ref=cluster.run_on("site0", app.lookup_one(f"rep{index}")))
        for index in range(3)]
    directory = ReplicatedDirectory(app, replicas, read_quorum=2,
                                    write_quorum=2)
    cluster.run_transaction("site0", directory.create)
    cluster.settle()

    # Populate inside one distributed transaction.
    def populate(tid):
        yield from directory.insert(tid, "wean-hall", "smith")
        yield from directory.insert(tid, "doherty", "jones")

    cluster.run_transaction("site0", populate)
    cluster.settle()
    print("inserted two entries across a write quorum of 2 nodes")

    def lookup(key):
        def body(tid):
            value = yield from directory.lookup(tid, key)
            return value
        result = cluster.run_transaction("site0", body)
        cluster.settle()
        return result

    print(f"lookup wean-hall -> {lookup('wean-hall')}")

    print("\n*** site2 fails ***")
    cluster.crash_node("site2")
    print(f"lookup with one node down -> {lookup('wean-hall')}")

    def update(tid):
        yield from directory.update(tid, "wean-hall", "taylor")

    cluster.run_transaction("site0", update)
    cluster.settle()
    print(f"update with one node down -> {lookup('wean-hall')}")

    print("\n*** site2 recovers; its replica is stale ***")
    cluster.restart_node("site2")
    # Version numbers protect readers: any read quorum overlaps the write
    # quorum, and the higher version wins the vote.
    fresh_refs = [
        Replica(ref=cluster.run_on("site0", app.lookup_one(f"rep{index}")))
        for index in (2, 0, 1)]  # probe the stale replica first
    repaired = ReplicatedDirectory(app, fresh_refs, read_quorum=2,
                                   write_quorum=2, read_repair=True)

    def read_with_repair(tid):
        value = yield from repaired.lookup(tid, "wean-hall")
        return value

    print(f"lookup probing the stale replica first -> "
          f"{cluster.run_transaction('site0', read_with_repair)}")
    cluster.settle()
    print("(read repair pushed the winning version back to site2)")

    print(f"\nsimulated time elapsed: {cluster.engine.now:.0f} ms")


if __name__ == "__main__":
    main()
