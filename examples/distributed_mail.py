"""A distributed mail system over two nodes (Section 2.2's motivation).

"The integrity guarantees of a mail system, such as one sketched by
Liskov, are also simplified" by distributed transactions: delivering one
message to recipients on *different nodes* either happens everywhere or
nowhere, with no special mail-system recovery code.  The mailbox server's
type-specific locking lets concurrent senders deliver to the same mailbox
without serializing.

Run:  python examples/distributed_mail.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.mailbox import MailboxServer

ALICE = ("east", "mail_east", 0)
BOB = ("west", "mail_west", 0)


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    for node, server in (("east", "mail_east"), ("west", "mail_west")):
        cluster.add_node(node)
        cluster.add_server(node, MailboxServer.factory(server))
    cluster.start()
    app = cluster.application("east")

    def refs():
        east = yield from app.lookup_one("mail_east")
        west = yield from app.lookup_one("mail_west")
        return east, west

    east, west = cluster.run_on("east", refs())

    # One logical send: a copy to Alice (east) and a copy to Bob (west),
    # atomically -- the two-phase commit spans both nodes.
    def broadcast(text):
        def body(tid):
            yield from app.call(east, "put",
                                {"mailbox": ALICE[2], "message": text}, tid)
            yield from app.call(west, "put",
                                {"mailbox": BOB[2], "message": text}, tid)
        return body

    cluster.run_transaction("east", broadcast("meeting at noon"))
    cluster.settle()
    print("delivered 'meeting at noon' to alice@east and bob@west "
          "atomically")

    # A failed delivery leaves neither copy behind.
    def half_hearted():
        tid = yield from app.begin_transaction()
        yield from app.call(east, "put",
                            {"mailbox": ALICE[2],
                             "message": "never mind"}, tid)
        yield from app.abort_transaction(tid, reason="thought better of it")

    cluster.run_on("east", half_hearted())
    cluster.settle()
    print("an aborted send left no partial delivery")

    def read(ref, mailbox, node):
        def body(tid):
            result = yield from app.call(ref, "read_all",
                                         {"mailbox": mailbox}, tid)
            return result["messages"]
        result = cluster.run_transaction(node, body)
        cluster.settle()
        return result

    print(f"alice@east reads: {read(east, ALICE[2], 'east')}")
    print(f"bob@west reads:   {read(west, BOB[2], 'west')}")

    # Mail survives a mail-server node crash.
    cluster.crash_node("west")
    cluster.restart_node("west")
    app2 = cluster.application("east")

    def reread(tid):
        fresh = yield from app2.lookup_one("mail_west")
        result = yield from app2.call(fresh, "take_all",
                                      {"mailbox": BOB[2]}, tid)
        return result["messages"]

    print(f"after west crashed and recovered, bob drains: "
          f"{cluster.run_transaction('east', reread)}")


if __name__ == "__main__":
    main()
