"""Quickstart: a single-node TABS cluster and the integer array server.

Demonstrates the whole Table 3-2 application surface: BeginTransaction,
operations on a data server via RPC, EndTransaction, AbortTransaction --
and that aborted updates really vanish while committed ones persist
across a node crash.

Run:  python examples/quickstart.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer


def main() -> None:
    # One node, running the four TABS system processes (Name Server,
    # Communication Manager, Recovery Manager, Transaction Manager) plus
    # one user data server.
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("workstation")
    cluster.add_server("workstation", IntegerArrayServer.factory("cells"))
    cluster.start()

    app = cluster.application("workstation")

    # --- a committed transaction ------------------------------------------
    def deposit(tid):
        ref = yield from app.lookup_one("cells")
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 100}, tid)
        result = yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        return result["value"]

    value = cluster.run_transaction("workstation", deposit)
    print(f"committed transaction wrote and read back: {value}")

    # --- an aborted transaction -------------------------------------------
    def try_and_regret():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("cells")
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 0}, tid)
        yield from app.abort_transaction(tid, reason="changed my mind")

    cluster.run_on("workstation", try_and_regret())

    def read(tid):
        ref = yield from app.lookup_one("cells")
        result = yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        return result["value"]

    print(f"after the abort the cell still holds: "
          f"{cluster.run_transaction('workstation', read)}")

    # --- failure atomicity across a crash ----------------------------------
    cluster.crash_node("workstation")
    report = cluster.restart_node("workstation")
    print(f"crash recovery scanned {report.log_records_scanned} log "
          f"records and restored {report.values_restored} objects")

    app = cluster.application("workstation")
    print(f"after crash + recovery the cell holds: "
          f"{cluster.run_transaction('workstation', read)}")

    print(f"\nsimulated time elapsed: {cluster.engine.now:.0f} ms")


if __name__ == "__main__":
    main()
