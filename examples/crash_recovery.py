"""Crash recovery under both logging algorithms, step by step.

Stages a mix of committed, aborted, and in-flight transactions against a
value-logged server and an operation-logged server sharing one node's
common log, crashes the node, and walks through what recovery does: the
single backward value pass, the three operation passes, and the clean
point (flush + checkpoint + truncation).

Run:  python examples/crash_recovery.py
"""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer
from repro.sim import Timeout


def main() -> None:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("host")
    cluster.add_server("host", IntegerArrayServer.factory("values"))
    cluster.add_server("host", OperationArrayServer.factory("counters"))
    cluster.start()
    app = cluster.application("host")

    def set_cell(ref, tid, cell, value):
        yield from app.call(ref, "set_cell",
                            {"cell": cell, "value": value}, tid)

    # 1. Committed work on both servers.
    def committed(tid):
        values = yield from app.lookup_one("values")
        counters = yield from app.lookup_one("counters")
        yield from set_cell(values, tid, 1, 111)
        yield from app.call(counters, "add_cell",
                            {"cell": 1, "delta": 7}, tid)

    cluster.run_transaction("host", committed)
    print("committed: values[1]=111, counters[1]+=7")

    # 2. An aborted transaction (its undo happens before the crash).
    def aborted():
        tid = yield from app.begin_transaction()
        values = yield from app.lookup_one("values")
        yield from set_cell(values, tid, 1, 999)
        yield from app.abort_transaction(tid)

    cluster.run_on("host", aborted())
    print("aborted:   values[1]=999 (undone immediately)")

    # 3. A transaction still in flight when the power fails.
    def in_flight():
        tid = yield from app.begin_transaction()
        counters = yield from app.lookup_one("counters")
        yield from app.call(counters, "add_cell",
                            {"cell": 1, "delta": 1000}, tid)
        yield Timeout(cluster.engine, 60_000.0)

    cluster.spawn_on("host", in_flight())
    cluster.engine.run(until=cluster.engine.now + 1_000.0)
    print("in flight: counters[1]+=1000 (never commits)")

    tabs = cluster.node("host")
    durable = len(tabs.log_store)
    print(f"\n*** power failure ({durable} durable log records) ***\n")
    cluster.crash_node("host")

    report = cluster.restart_node("host")
    print("crash recovery:")
    print(f"  log records scanned .......... {report.log_records_scanned}")
    print(f"  value-logged objects restored  {report.values_restored}")
    print(f"  operations redone ............ {report.operations_redone}")
    print(f"  operations undone ............ {report.operations_undone}")
    print(f"  log truncated to ............. {len(tabs.log_store)} records")

    app = cluster.application("host")

    def read_back(tid):
        values = yield from app.lookup_one("values")
        counters = yield from app.lookup_one("counters")
        v = yield from app.call(values, "get_cell", {"cell": 1}, tid)
        c = yield from app.call(counters, "get_cell", {"cell": 1}, tid)
        return v["value"], c["value"]

    value, counter = cluster.run_transaction("host", read_back)
    print(f"\nafter recovery: values[1]={value} (committed 111 kept, "
          f"aborted 999 gone)")
    print(f"                counters[1]={counter} (committed +7 kept, "
          f"in-flight +1000 undone)")
    assert (value, counter) == (111, 7)
    print("\nrecoverable segments reflect only committed transactions.")


if __name__ == "__main__":
    main()
